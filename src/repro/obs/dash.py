"""Live terminal dashboard over campaign telemetry.

``repro-sim obs dash`` renders a refreshing view of a running (or
finished) campaign from its side-band artifacts alone:

* **progress** — per-campaign done/planned counts from the
  :class:`~repro.runner.campaign.SweepManifest` records under
  ``<cache-root>/sweeps/``, judged against the run manifests the
  workers have written so far;
* **cache and retry counters** — computed/hit totals, tasks that
  needed more than one attempt, and (when attached in-process) the
  live ``runner.*`` counters from the metrics registry;
* **per-policy throughput** — tasks finished and tasks/second of
  simulation wall-clock for each co-allocation policy;
* **latency sparkline** — recent task wall-clocks in completion
  order, one block character each.

Everything is read from :class:`~repro.obs.store.EventStore` (the
manifest side-band), so the dashboard can watch a campaign running in
*another process* — it polls the artifact root and re-renders.  On a
TTY the view refreshes in place (ANSI clear-home); on anything else it
degrades to a single snapshot so piping to a file stays sane.

Strictly read-only and side-band: attaching, detaching or deleting the
dashboard changes no task key, payload or result byte (pinned by the
golden-obs identity tests).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, TextIO, Union

from .registry import REGISTRY, MetricsRegistry
from .store import EventStore
from .timing import wall_clock

__all__ = ["CampaignRow", "DashboardData", "collect", "render",
           "run_dashboard"]

PathLike = Union[str, Path]

#: Clear screen + cursor home; the in-place refresh on a TTY.
ANSI_CLEAR = "\x1b[2J\x1b[H"

#: Registry counters surfaced on the dashboard when present, in
#: display order (runner retry/fault/cache machinery).
_COUNTER_NAMES = (
    "runner.tasks.total",
    "runner.cache.hits",
    "runner.cache.misses",
    "runner.cache.stores",
    "runner.retries",
    "runner.timeouts",
    "runner.tasks.recovered",
    "runner.tasks.rescheduled",
    "runner.workers.replaced",
    "runner.resume.campaigns",
)


@dataclass(frozen=True)
class CampaignRow:
    """Progress of one campaign manifest."""

    campaign: str
    kind: str
    label: str
    status: str
    done: int
    total: int


@dataclass
class DashboardData:
    """Everything one dashboard frame needs, gathered read-only."""

    root: str
    runs: int = 0
    cache_counts: dict = field(default_factory=dict)
    policies: dict = field(default_factory=dict)
    tasks_retried: int = 0
    extra_attempts: int = 0
    latencies: list = field(default_factory=list)
    campaigns: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    issues: int = 0


def _campaign_rows(cache_root: Optional[PathLike],
                   run_keys: frozenset) -> list[CampaignRow]:
    """Campaign progress rows from ``<cache-root>/sweeps/*.json``.

    ``done`` counts planned task keys that already have a run manifest
    in the obs root — the same judgement the dashboard's other tiles
    use — so no cache lookups are needed.  Torn or foreign JSON is
    skipped; progress display must never crash on a half-written file.
    """
    if cache_root is None:
        return []
    rows: list[CampaignRow] = []
    for path in sorted(Path(cache_root).glob("sweeps/*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        keys = payload.get("task_keys") or []
        if not isinstance(keys, list):
            continue
        rows.append(CampaignRow(
            campaign=str(payload.get("campaign", path.stem)),
            kind=str(payload.get("kind", "?")),
            label=str(payload.get("label", "?")),
            status=str(payload.get("status", "?")),
            done=sum(1 for k in keys if k in run_keys),
            total=len(keys),
        ))
    return rows


def collect(root: Optional[PathLike] = None,
            cache_root: Optional[PathLike] = None,
            registry: Optional[MetricsRegistry] = None,
            ) -> DashboardData:
    """Gather one frame of dashboard data from the artifact root.

    ``registry`` defaults to the process-wide :data:`REGISTRY`, whose
    ``runner.*`` counters are only populated when the dashboard runs
    inside the driving process; watching from outside, the counters
    tile simply shows what the manifests imply.
    """
    store = EventStore(root)
    streams = store.runs()
    registry = registry if registry is not None else REGISTRY
    data = DashboardData(root=str(store.root), runs=len(streams))

    ordered = sorted(streams, key=lambda s: s.manifest.created_unix)
    for stream in ordered:
        m = stream.manifest
        data.cache_counts[m.cache_status] = \
            data.cache_counts.get(m.cache_status, 0) + 1
        per = data.policies.setdefault(
            m.policy, {"tasks": 0, "wall_clock_s": 0.0})
        per["tasks"] += 1
        if m.wall_clock_s is not None:
            per["wall_clock_s"] += m.wall_clock_s
            data.latencies.append(m.wall_clock_s)
        if m.attempts > 1:
            data.tasks_retried += 1
            data.extra_attempts += m.attempts - 1
    for per in data.policies.values():
        spent = per["wall_clock_s"]
        per["throughput"] = per["tasks"] / spent if spent > 0 else 0.0

    run_keys = frozenset(s.key for s in streams)
    data.campaigns = _campaign_rows(cache_root, run_keys)

    snapshot = registry.snapshot()["counters"]
    data.counters = {name: snapshot[name] for name in _COUNTER_NAMES
                     if snapshot.get(name)}
    data.issues = len(store.issues)
    return data


def _bar(done: int, total: int, width: int = 28) -> str:
    if total <= 0:
        return "[" + "-" * width + "]"
    filled = int(done / total * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render(data: DashboardData, width: int = 72,
           ascii_only: bool = False) -> str:
    """One dashboard frame as a multi-line string."""
    from repro.analysis.ascii_plot import sparkline

    lines = [f"repro-sim obs dash — {data.root}", ""]

    if data.campaigns:
        lines.append("campaigns")
        for row in data.campaigns:
            pct = 100.0 * row.done / row.total if row.total else 0.0
            lines.append(
                f"  {row.kind} {row.label}  "
                f"{_bar(row.done, row.total)} "
                f"{row.done}/{row.total} ({pct:.0f}%) {row.status}")
        lines.append("")

    cache = data.cache_counts
    lines.append(
        f"runs {data.runs}  "
        f"computed {cache.get('computed', 0)}  "
        f"cached {cache.get('hit', 0)}  "
        f"stored {cache.get('stored', 0)}  "
        f"retried {data.tasks_retried} "
        f"(+{data.extra_attempts} attempts)")
    if data.issues:
        lines.append(f"  ({data.issues} unreadable artifacts skipped)")
    lines.append("")

    if data.policies:
        lines.append("per-policy throughput (tasks / sim wall-clock s)")
        name_width = max(len(p) for p in data.policies)
        for policy in sorted(data.policies):
            per = data.policies[policy]
            lines.append(
                f"  {policy.rjust(name_width)}  "
                f"{per['tasks']:4d} tasks  "
                f"{per['wall_clock_s']:8.2f}s  "
                f"{per['throughput']:8.2f}/s")
        lines.append("")

    if data.latencies:
        recent = data.latencies[-width:]
        lines.append(
            f"task wall-clock, last {len(recent)} "
            f"(min {min(recent):.3g}s max {max(recent):.3g}s)")
        lines.append("  " + sparkline(recent, width=width,
                                      ascii_only=ascii_only))
        lines.append("")

    if data.counters:
        lines.append("process counters")
        name_width = max(len(n) for n in data.counters)
        for name, value in data.counters.items():
            lines.append(f"  {name.ljust(name_width)}  {value}")
        lines.append("")

    if data.runs == 0 and not data.campaigns:
        lines.append("(no run manifests yet — is the campaign "
                     "running with REPRO_OBS=1?)")
    return "\n".join(lines).rstrip() + "\n"


def run_dashboard(root: Optional[PathLike] = None,
                  cache_root: Optional[PathLike] = None, *,
                  interval: float = 1.0,
                  iterations: Optional[int] = None,
                  duration: Optional[float] = None,
                  width: int = 72,
                  ascii_only: bool = False,
                  registry: Optional[MetricsRegistry] = None,
                  stream: Optional[TextIO] = None,
                  _sleep: Optional[Callable[[float], None]] = None,
                  ) -> int:
    """Render the dashboard, refreshing until a stop condition.

    On a TTY the frame redraws in place every ``interval`` seconds
    until ``iterations`` frames or ``duration`` wall-clock seconds
    have passed (both ``None`` = until interrupted).  On a non-TTY
    stream exactly one snapshot is written — ``obs dash > log.txt``
    and CI capture just work.  Returns the number of frames rendered.
    """
    out = stream if stream is not None else sys.stdout
    sleep = _sleep if _sleep is not None else _default_sleep
    live = bool(getattr(out, "isatty", lambda: False)())
    deadline = None if duration is None else wall_clock() + duration
    frames = 0
    try:
        while True:
            frame = render(collect(root, cache_root, registry),
                           width=width, ascii_only=ascii_only)
            if live:
                out.write(ANSI_CLEAR)
            out.write(frame)
            out.flush()
            frames += 1
            if not live:
                return frames
            if iterations is not None and frames >= iterations:
                return frames
            if deadline is not None and wall_clock() >= deadline:
                return frames
            sleep(interval)
    except KeyboardInterrupt:
        return frames


def _default_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)
