"""Run manifests: the provenance side-band of every simulation task.

A :class:`RunManifest` records *how a result came to be* — the task
key, a hash of the configuration, the master seed, the repository
version, the interpreter and platform, the wall-clock spent and whether
the result was computed or served from cache — plus a free-form metrics
mapping (engine events stepped, placement attempts, per-queue disable
counts, ...).

Manifests are written

* under ``<obs-root>/manifests/<key[:2]>/<key>.json`` for every task a
  worker computes,
* alongside the ``.repro-cache/`` entry (``<key>.manifest.json``) when
  a result is stored, and
* alongside saved sweep JSON (``<path>.manifest.json``) with
  ``kind="sweep"``.

The determinism contract: manifests are derived *from* results and
configuration, never fed back into task keys or payloads — deleting
every manifest changes nothing about any simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as platform_module
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "config_hash",
           "for_task", "for_sweep", "write_manifest", "load_manifest",
           "manifest_path", "cache_manifest_path"]

#: Versioned shape tag of the manifest payload; bump on change.
MANIFEST_SCHEMA = "repro.obs/manifest/1"

PathLike = Union[str, Path]


def _repro_version() -> str:
    import repro

    return getattr(repro, "__version__", "unknown")


def config_hash(config: Any) -> str:
    """Stable sha256 (16 hex chars) of a ``SimulationConfig``."""
    payload = json.dumps(asdict(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one task (or one sweep artifact)."""

    key: str
    description: str
    config_hash: str
    seed: int
    policy: str
    cache_status: str  # "computed" | "hit" | "stored" | "saved"
    kind: str = "task"  # "task" | "sweep"
    offered_gross: Optional[float] = None
    wall_clock_s: Optional[float] = None
    #: Executions the runner made before this result existed (retries
    #: and crash/timeout replacements count; 1 = first try succeeded).
    #: Backfilled by the retry layer, parent-side, after a recovery.
    attempts: int = 1
    repro_version: str = field(default_factory=_repro_version)
    python_version: str = field(
        default_factory=lambda: platform_module.python_version())
    platform: str = field(default_factory=platform_module.platform)
    created_unix: float = field(default_factory=time.time)
    event_log: Optional[str] = None
    metrics: dict = field(default_factory=dict)
    schema: str = MANIFEST_SCHEMA

    def to_dict(self) -> dict:
        """JSON-ready dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest, rejecting unknown schema tags."""
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"manifest schema {payload.get('schema')!r} != "
                f"{MANIFEST_SCHEMA!r}"
            )
        data = {k: payload[k] for k in cls.__dataclass_fields__
                if k in payload}
        return cls(**data)


def for_task(task: Any, key: str, *, cache_status: str,
             wall_clock_s: Optional[float] = None,
             metrics: Optional[dict] = None,
             event_log: Optional[str] = None) -> RunManifest:
    """Build a manifest for one :class:`~repro.runner.RunTask`."""
    config = task.config
    return RunManifest(
        key=key,
        description=task.describe(),
        config_hash=config_hash(config),
        seed=config.seed,
        policy=config.policy,
        offered_gross=task.offered_gross,
        cache_status=cache_status,
        wall_clock_s=wall_clock_s,
        metrics=dict(metrics or {}),
        event_log=event_log,
    )


def for_sweep(label: str, config: Any, *, points: int,
              wall_clock_s: Optional[float] = None) -> RunManifest:
    """Build a ``kind="sweep"`` manifest for a saved sweep artifact."""
    digest = config_hash(config)
    return RunManifest(
        key=digest,
        description=f"sweep {label} ({points} points)",
        config_hash=digest,
        seed=config.seed,
        policy=config.policy,
        cache_status="saved",
        kind="sweep",
        wall_clock_s=wall_clock_s,
        metrics={"points": points},
    )


def manifest_path(root: PathLike, key: str) -> Path:
    """Where the obs-root manifest for ``key`` lives (256-way shard)."""
    root = Path(root)
    return root / "manifests" / key[:2] / f"{key}.json"


def cache_manifest_path(entry_path: Path) -> Path:
    """The manifest path next to a ``.repro-cache`` entry."""
    return entry_path.with_name(entry_path.stem + ".manifest.json")


def write_manifest(manifest: RunManifest, path: PathLike) -> Path:
    """Write ``manifest`` as JSON (atomic: temp file + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh, indent=1, sort_keys=True)
    os.replace(tmp, path)
    return path


def load_manifest(path: PathLike) -> RunManifest:
    """Read a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as fh:
        return RunManifest.from_dict(json.load(fh))
