"""The observability on/off switch and artifact root.

Observability is strictly **side-band**: enabling it changes which
artifacts (event logs, manifests, metrics snapshots) are written, never
a task key, a cached payload or a simulation result.  The gate is an
environment variable so it reaches worker processes for free::

    REPRO_OBS=1         repro-sim sweep ...     # artifacts on
    REPRO_OBS_DIR=path  ...                     # artifact root (.repro-obs)

Tests (and embedders) can force the gate with :func:`set_enabled`,
which overrides the environment until reset with ``set_enabled(None)``.
Worker processes re-read the environment on import, so the env-var form
is the one that propagates through a ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

__all__ = ["OBS_ENV", "OBS_DIR_ENV", "DEFAULT_OBS_DIR",
           "obs_enabled", "set_enabled", "obs_root"]

#: Environment variable enabling observability ("1"/"on"/"true"/"yes").
OBS_ENV = "REPRO_OBS"

#: Environment variable overriding the artifact root directory.
OBS_DIR_ENV = "REPRO_OBS_DIR"

#: Default artifact root, relative to the working directory.
DEFAULT_OBS_DIR = ".repro-obs"

_TRUTHY = frozenset({"1", "on", "yes", "true"})

#: Process-wide override; ``None`` defers to the environment.
_forced: Optional[bool] = None


def obs_enabled() -> bool:
    """Whether observability artifacts should be produced."""
    if _forced is not None:
        return _forced
    return os.environ.get(OBS_ENV, "").strip().lower() in _TRUTHY


def set_enabled(value: Optional[bool]) -> None:
    """Force the gate on/off (``None`` restores the environment gate)."""
    global _forced
    _forced = value


def obs_root() -> Path:
    """The artifact root (``$REPRO_OBS_DIR`` or ``.repro-obs``)."""
    raw = os.environ.get(OBS_DIR_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_OBS_DIR)
