"""Process-wide metrics registry: counters, gauges and histograms.

The registry answers "what did this process do?" — engine events
stepped, placement attempts, runner cache hits/misses/stores, per-task
wall-clock — without ever influencing results.  Instruments are plain
aggregate accumulators (an increment is one integer add, a histogram
observation updates four scalars), so the cost is near zero whether
observability is on or off; the *gate* decides only whether snapshots
are written anywhere.

One module-level :data:`REGISTRY` serves the whole process.  Worker
processes get their own copy (fork/spawn); their numbers reach the
parent through the per-task :class:`~repro.obs.manifest.RunManifest`
side-band, not through shared memory — the registry deliberately has no
cross-process machinery.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY"]

#: Geometric bucket growth factor for histogram quantile estimates.
#: Consecutive bucket boundaries differ by 10%, so any quantile
#: estimate is within ±5% of the true sample quantile — plenty for
#: dashboard latency tiles, at a few hundred buckets across 12 orders
#: of magnitude.
_BUCKET_FACTOR = 1.1

_LOG_FACTOR = math.log(_BUCKET_FACTOR)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, "
                             f"got {amount!r}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current level by ``delta``."""
        self.value += float(delta)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Aggregate distribution summary with streaming quantiles.

    Bounded memory by design — observations are folded into four
    scalars plus a geometric bucket table (boundaries growing by
    :data:`_BUCKET_FACTOR`), never stored — so per-task wall-clock can
    be observed for millions of tasks without growth, and the
    dashboard's latency tiles get p50/p90/p99 estimates without raw
    samples.  Estimates are within half a bucket (±5%) of the true
    sample quantile; non-positive observations share one underflow
    bucket (wall-clock durations, the only current use, are positive).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= 0.0:
            # Underflow bucket: all non-positive values collapse here
            # and quantiles falling in it report the observed minimum.
            return -(10 ** 6)
        return int(math.floor(math.log(value) / _LOG_FACTOR))

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregates."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = self._bucket(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``None`` when empty).

        Walks the bucket table cumulating counts until the target rank
        is covered and returns the geometric midpoint of that bucket,
        clamped into ``[min, max]`` so the estimate never leaves the
        observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                if index <= -(10 ** 6):
                    return self.minimum
                mid = math.exp((index + 0.5) * _LOG_FACTOR)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    def summary(self) -> dict:
        """JSON-ready aggregate dict (empty histograms report nulls)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:g}>")


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    Instruments are keyed by name within their family; asking for the
    same name twice returns the same instrument, so call sites never
    coordinate.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        try:
            return self._gauges[name]
        except KeyError:
            instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            instrument = self._histograms[name] = Histogram(name)
            return instrument

    def snapshot(self) -> dict:
        """JSON-ready state of every instrument, sorted by name."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in
                           sorted(self._histograms.items())},
        }

    def merge_counts(self, counts: Optional[dict],
                     prefix: str = "") -> None:
        """Fold a ``{name: int}`` mapping into counters (manifest
        metrics from a finished run, for example)."""
        if not counts:
            return
        for name, value in counts.items():
            if isinstance(value, (int, float)) and value >= 0:
                self.counter(prefix + name).inc(int(value))

    def reset(self) -> None:
        """Drop every instrument (tests and fresh CLI commands)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")


#: The process-wide registry.
REGISTRY = MetricsRegistry()
