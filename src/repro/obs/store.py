"""The read side of the event pipeline: a queryable store over
EventLog JSONL artifacts.

:mod:`repro.obs.events` writes logs; this module reads them back — the
prerequisite for every downstream consumer (the ``obs`` CLI group, the
live dashboard, the span exporter, the future sweep service whose wire
format is exactly this stream).

Three layers:

* **Line level** — :func:`iter_log` streams the events of one log
  lazily, filtered by kind and simulation-time range.  In tolerant
  mode (``strict=False``) malformed lines — the truncated final batch a
  crashed worker leaves behind, a hand-edited log, an empty file — are
  reported through ``on_issue`` as :class:`LogIssue` records and
  *skipped*, never raised.  :func:`validate_log` turns the same walk
  into a schema audit: every event is checked against
  :data:`~repro.obs.events.EVENT_SCHEMAS` and violations come back with
  their line number.
* **Live level** — :func:`follow_events` tails a log that is still
  being written.  An :class:`~repro.obs.events.EventLog` stages at
  ``<path>.tmp`` and atomically publishes on close, so the follower
  watches the staging file first, re-reads only complete lines (a
  partial tail is left for the next poll), and hands over to the
  published file once it appears.
* **Directory level** — :class:`EventStore` resolves a ``.repro-obs``
  artifact root into per-run streams via the
  :class:`~repro.obs.manifest.RunManifest` side-band: each manifest
  names its event log, so the store can enumerate runs, open any run's
  stream and aggregate across a whole campaign.

On top of the streams, :func:`reduce_series` folds events into
fixed-width time-series (queue depth, per-cluster busy processors,
placement fit/no-fit rates, departure throughput) that
:mod:`repro.analysis.ascii_plot` renders in the terminal.

Everything here is read-only and side-band: the store never writes,
and deleting every artifact it reads changes nothing about any
simulation result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Union,
)

from .events import EVENT_SCHEMA, EVENT_SCHEMAS
from .gate import obs_root
from .manifest import RunManifest, load_manifest
from .timing import wall_clock

__all__ = [
    "LogIssue",
    "RunStream",
    "EventStore",
    "SeriesPoint",
    "EventSeries",
    "iter_log",
    "validate_log",
    "follow_events",
    "reduce_series",
    "queue_depth_series",
    "busy_processors_series",
    "placement_series",
    "throughput_series",
    "render_series",
]

PathLike = Union[str, Path]

#: Keys implicit on every event row (not part of any kind's payload).
IMPLICIT_KEYS = frozenset({"t", "kind"})


@dataclass(frozen=True)
class LogIssue:
    """One problem found while reading or validating an event log.

    ``line`` is 1-based (the header is line 1); ``line`` 0 marks
    file-level problems (missing, empty, unreadable).
    """

    path: str
    line: int
    reason: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.reason}"


def _issue(on_issue: Optional[Callable[[LogIssue], None]],
           path: PathLike, line: int, reason: str) -> None:
    if on_issue is not None:
        on_issue(LogIssue(str(path), line, reason))


def _check_header(raw: str, path: PathLike, strict: bool,
                  on_issue: Optional[Callable[[LogIssue], None]]) -> bool:
    """Validate the header line; report/raise and return validity."""
    if not raw:
        if strict:
            raise ValueError(f"{path}: empty event log (no header)")
        _issue(on_issue, path, 0, "empty event log (no header)")
        return False
    try:
        header = json.loads(raw)
    except json.JSONDecodeError as exc:
        if strict:
            raise ValueError(
                f"{path}: not a JSONL event log ({exc})") from None
        _issue(on_issue, path, 1, f"unparseable header: {exc}")
        return False
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema != EVENT_SCHEMA:
        if strict:
            raise ValueError(
                f"{path}: schema tag {schema!r} != {EVENT_SCHEMA!r}")
        _issue(on_issue, path, 1,
               f"schema tag {schema!r} != {EVENT_SCHEMA!r}")
        return False
    return True


def _parse_line(raw: str, path: PathLike, line_no: int, strict: bool,
                on_issue: Optional[Callable[[LogIssue], None]],
                ) -> list[dict]:
    """One JSONL line → its events (one batch array or a bare object).

    Tolerant mode reports and skips anything unparseable — the
    signature failure is the truncated final batch line left by a
    worker killed mid-flush.
    """
    raw = raw.strip()
    if not raw:
        return []
    try:
        parsed = json.loads(raw)
    except json.JSONDecodeError as exc:
        if strict:
            raise
        _issue(on_issue, path, line_no,
               f"truncated or malformed line skipped ({exc})")
        return []
    if isinstance(parsed, list):
        events = [e for e in parsed if isinstance(e, dict)]
        if len(events) != len(parsed):
            if strict:
                raise ValueError(
                    f"{path}:{line_no}: non-object entry in batch")
            _issue(on_issue, path, line_no,
                   "non-object entries in batch skipped")
        return events
    if isinstance(parsed, dict):
        return [parsed]
    if strict:
        raise ValueError(f"{path}:{line_no}: expected a JSON object "
                         f"or array, got {type(parsed).__name__}")
    _issue(on_issue, path, line_no,
           f"expected object or array, got {type(parsed).__name__}")
    return []


def _passes(event: dict, kinds: Optional[frozenset],
            since: Optional[float], until: Optional[float]) -> bool:
    if kinds is not None and event.get("kind") not in kinds:
        return False
    if since is not None or until is not None:
        t = event.get("t")
        if not isinstance(t, (int, float)):
            return False
        if since is not None and t < since:
            return False
        if until is not None and t > until:
            return False
    return True


def iter_log(path: PathLike, *,
             kinds: Optional[Iterable[str]] = None,
             since: Optional[float] = None,
             until: Optional[float] = None,
             strict: bool = True,
             on_issue: Optional[Callable[[LogIssue], None]] = None,
             ) -> Iterator[dict]:
    """Lazily yield the events of one log, filtered and validated.

    Parameters
    ----------
    kinds:
        Only yield events of these kinds (``None`` = all).
    since, until:
        Inclusive simulation-time bounds on the ``t`` field.
    strict:
        When true (the default, matching
        :func:`~repro.obs.events.read_events`), malformed content
        raises.  When false, problems are reported to ``on_issue`` and
        skipped — a truncated final line or an empty file yields the
        parseable prefix instead of an exception.
    on_issue:
        Callback receiving each :class:`LogIssue` in tolerant mode.
    """
    kind_set = frozenset(kinds) if kinds is not None else None
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        if strict:
            raise
        _issue(on_issue, path, 0, f"unreadable: {exc}")
        return
    with fh:
        if not _check_header(fh.readline(), path, strict, on_issue):
            return
        for line_no, raw in enumerate(fh, start=2):
            for event in _parse_line(raw, path, line_no, strict,
                                     on_issue):
                if _passes(event, kind_set, since, until):
                    yield event


def validate_log(path: PathLike) -> tuple[int, list[LogIssue]]:
    """Audit one log against :data:`EVENT_SCHEMAS`.

    Returns ``(events_checked, issues)``.  Issues cover file-level
    problems (missing/empty/bad header), malformed lines, unknown
    event kinds and payload keys missing from (or unknown to) the
    registered schema — each with the offending line number.
    """
    issues: list[LogIssue] = []
    count = 0
    kind_set = frozenset(EVENT_SCHEMAS)
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        return 0, [LogIssue(str(path), 0, f"unreadable: {exc}")]
    with fh:
        if not _check_header(fh.readline(), path, False, issues.append):
            return 0, issues
        for line_no, raw in enumerate(fh, start=2):
            for event in _parse_line(raw, path, line_no, False,
                                     issues.append):
                count += 1
                kind = event.get("kind")
                if "t" not in event:
                    issues.append(LogIssue(str(path), line_no,
                                           f"event missing 't': "
                                           f"{event!r}"))
                if kind not in kind_set:
                    issues.append(LogIssue(str(path), line_no,
                                           f"unknown event kind "
                                           f"{kind!r}"))
                    continue
                schema = EVENT_SCHEMAS[kind]
                keys = frozenset(event) - IMPLICIT_KEYS
                missing = schema - keys
                unknown = keys - schema
                if missing:
                    issues.append(LogIssue(
                        str(path), line_no,
                        f"{kind!r} event missing payload keys "
                        f"{sorted(missing)}"))
                if unknown:
                    issues.append(LogIssue(
                        str(path), line_no,
                        f"{kind!r} event carries unregistered keys "
                        f"{sorted(unknown)}"))
    return count, issues


def _complete_lines(path: Path, offset: int) -> tuple[list[str], int]:
    """New *complete* lines of ``path`` past ``offset``.

    A trailing chunk without its newline is left unread (the writer is
    mid-line); the returned offset points just past the last complete
    line so the next poll resumes there.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return [], offset
    if not data:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    complete = data[:end + 1]
    lines = complete.decode("utf-8", errors="replace").splitlines()
    return lines, offset + len(complete)


def follow_events(path: PathLike, *,
                  kinds: Optional[Iterable[str]] = None,
                  poll: float = 0.05,
                  timeout: Optional[float] = None,
                  on_issue: Optional[Callable[[LogIssue], None]] = None,
                  _sleep: Optional[Callable[[float], None]] = None,
                  ) -> Iterator[dict]:
    """Tail a live event log, yielding events as they are flushed.

    ``path`` is the *published* location; while the writer is active
    the bytes live at ``<path>.tmp`` (see
    :class:`~repro.obs.events.EventLog`), so the follower reads the
    staging file until the published file appears, then drains the
    remainder and stops.  Only complete lines are consumed — a batch
    caught mid-write is picked up whole on a later poll.

    The generator terminates when the log is finalized and fully read,
    or when ``timeout`` wall-clock seconds pass without the log being
    finalized (``None`` waits forever).  All reading is tolerant:
    problems go to ``on_issue``.
    """
    path = Path(path)
    staging = path.with_name(path.name + ".tmp")
    kind_set = frozenset(kinds) if kinds is not None else None
    sleep = _sleep if _sleep is not None else _default_sleep
    offset = 0
    header_seen = False
    line_no = 0
    deadline = None if timeout is None else wall_clock() + timeout

    def drain(source: Path) -> Iterator[dict]:
        nonlocal offset, header_seen, line_no
        lines, offset = _complete_lines(source, offset)
        for raw in lines:
            line_no += 1
            if not header_seen:
                header_seen = True
                _check_header(raw + "\n", source, False, on_issue)
                continue
            for event in _parse_line(raw, source, line_no, False,
                                     on_issue):
                if _passes(event, kind_set, None, None):
                    yield event

    while True:
        if path.exists():
            # Published: the staging offset stays valid because the
            # file was renamed, not rewritten — drain what remains and
            # finish.
            yield from drain(path)
            return
        yield from drain(staging)
        if deadline is not None and wall_clock() >= deadline:
            _issue(on_issue, path, line_no,
                   f"follow timed out after {timeout:g}s without the "
                   f"log being finalized")
            return
        sleep(poll)


def _default_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)


# ---------------------------------------------------------------------------
# Directory level: a .repro-obs root resolved into per-run streams.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunStream:
    """One run's manifest plus (when present) its event log."""

    manifest: RunManifest
    log_path: Optional[Path]

    @property
    def key(self) -> str:
        """The run's task key."""
        return self.manifest.key

    def events(self, **filters: object) -> Iterator[dict]:
        """The run's event stream (tolerant; empty when no log)."""
        if self.log_path is None or not self.log_path.exists():
            return iter(())
        return iter_log(self.log_path, strict=False, **filters)  # type: ignore[arg-type]


class EventStore:
    """Per-run streams over a ``.repro-obs`` artifact root.

    The store indexes the manifest side-band
    (``<root>/manifests/<key[:2]>/<key>.json``) rather than globbing
    event logs directly: manifests carry the policy, seed, cache
    status, attempts and the log path, so every query can filter on
    run metadata without touching a single event line.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else obs_root()
        self.issues: list[LogIssue] = []

    def runs(self, *, policy: Optional[str] = None,
             cache_status: Optional[str] = None) -> list[RunStream]:
        """Every run under the root, sorted by task key.

        Unreadable manifests are recorded in :attr:`issues` and
        skipped — a torn manifest must never hide the healthy runs
        around it.
        """
        out: list[RunStream] = []
        manifest_dir = self.root / "manifests"
        for path in sorted(manifest_dir.glob("*/*.json")):
            try:
                manifest = load_manifest(path)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                self.issues.append(LogIssue(str(path), 0,
                                            f"unreadable manifest: "
                                            f"{exc}"))
                continue
            if policy is not None and manifest.policy != policy:
                continue
            if cache_status is not None \
                    and manifest.cache_status != cache_status:
                continue
            out.append(RunStream(manifest, self._log_path(manifest)))
        return out

    def _log_path(self, manifest: RunManifest) -> Optional[Path]:
        if manifest.event_log:
            recorded = Path(manifest.event_log)
            if recorded.exists():
                return recorded
            # The obs root may have been relocated (CI artifact
            # download, rsync); fall back to the canonical layout.
        key = manifest.key
        local = self.root / "events" / key[:2] / f"{key}.jsonl"
        if local.exists():
            return local
        return None

    def run(self, key: str) -> Optional[RunStream]:
        """The run whose task key is (or uniquely starts with) ``key``."""
        matches = [s for s in self.runs() if s.key.startswith(key)]
        if len(matches) == 1:
            return matches[0]
        return None

    def events(self, *, policy: Optional[str] = None,
               kinds: Optional[Iterable[str]] = None,
               since: Optional[float] = None,
               until: Optional[float] = None) -> Iterator[dict]:
        """All events across every run (run order by task key)."""
        kind_tuple = tuple(kinds) if kinds is not None else None
        for stream in self.runs(policy=policy):
            yield from stream.events(kinds=kind_tuple, since=since,
                                     until=until,
                                     on_issue=self.issues.append)

    def __repr__(self) -> str:
        return f"<EventStore {self.root}>"


# ---------------------------------------------------------------------------
# Streaming reducers: event stream → fixed-width time series.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesPoint:
    """One window of a reduced series: ``[start, start + width)``."""

    start: float
    values: dict[str, float]


@dataclass
class EventSeries:
    """A named, fixed-width-windowed time series."""

    name: str
    width: float
    points: list[SeriesPoint] = field(default_factory=list)

    def series(self, column: str) -> tuple[list[float], list[float]]:
        """(window centers, values) for one column (0.0 when absent)."""
        xs = [p.start + self.width / 2 for p in self.points]
        ys = [p.values.get(column, 0.0) for p in self.points]
        return xs, ys

    def columns(self) -> list[str]:
        """Every column name appearing in any window, sorted."""
        names: set[str] = set()
        for p in self.points:
            names.update(p.values)
        return sorted(names)


class _Reducer:
    """Base streaming reducer: folds events into per-window columns.

    Subclasses implement :meth:`fold` (update running state from one
    event) and :meth:`snapshot` (the column values to record at each
    window boundary).  Counter-style reducers reset per window;
    level-style reducers carry state across windows.
    """

    name = "series"

    def fold(self, event: dict) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict[str, float]:
        raise NotImplementedError

    def close_window(self) -> None:
        """Hook for per-window (rate-style) reducers; default no-op."""


class QueueDepthReducer(_Reducer):
    """Jobs waiting (arrived, not yet started), sampled per window."""

    name = "queue_depth"

    def __init__(self) -> None:
        self.waiting = 0

    def fold(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "arrival":
            self.waiting += 1
        elif kind == "start":
            self.waiting -= 1

    def snapshot(self) -> dict[str, float]:
        return {"waiting": float(self.waiting)}


class BusyProcessorsReducer(_Reducer):
    """Per-cluster busy processors, sampled at each window boundary.

    ``start`` events carry the job's ``assignment`` — a sequence of
    ``(cluster, processors)`` pairs — and ``departure`` events name the
    job, so the reducer tracks live placements by job index.  Columns
    are ``cluster<N>`` plus ``total``; with ``capacities`` given the
    values are normalized to utilizations in [0, 1].
    """

    name = "busy"

    def __init__(self,
                 capacities: Optional[Sequence[int]] = None) -> None:
        self.capacities = tuple(capacities) if capacities else None
        self.busy: dict[int, int] = {}
        self._placements: dict[object, list[tuple[int, int]]] = {}

    def fold(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "start":
            assignment = event.get("assignment") or ()
            pairs = [(int(c), int(n)) for c, n in assignment]
            self._placements[event.get("job")] = pairs
            for cluster, procs in pairs:
                self.busy[cluster] = self.busy.get(cluster, 0) + procs
        elif kind == "departure":
            pairs = self._placements.pop(event.get("job"), [])
            for cluster, procs in pairs:
                self.busy[cluster] = self.busy.get(cluster, 0) - procs

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {}
        total = 0.0
        for cluster in sorted(self.busy):
            value = float(self.busy[cluster])
            total += value
            if self.capacities and cluster < len(self.capacities):
                value /= self.capacities[cluster] or 1
            out[f"cluster{cluster}"] = value
        if self.capacities:
            out["total"] = total / (sum(self.capacities) or 1)
        else:
            out["total"] = total
        return out


class PlacementReducer(_Reducer):
    """Placement decisions per window: fits, no-fits, fit rate."""

    name = "placement"

    def __init__(self) -> None:
        self.fits = 0
        self.no_fits = 0

    def fold(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "placement_fit":
            self.fits += 1
        elif kind == "placement_no_fit":
            self.no_fits += 1

    def snapshot(self) -> dict[str, float]:
        attempts = self.fits + self.no_fits
        rate = self.fits / attempts if attempts else 0.0
        return {"fit": float(self.fits), "no_fit": float(self.no_fits),
                "fit_rate": rate}

    def close_window(self) -> None:
        self.fits = 0
        self.no_fits = 0


class ThroughputReducer(_Reducer):
    """Departures (completed jobs) per window."""

    name = "throughput"

    def __init__(self) -> None:
        self.departures = 0

    def fold(self, event: dict) -> None:
        if event.get("kind") == "departure":
            self.departures += 1

    def snapshot(self) -> dict[str, float]:
        return {"departures": float(self.departures)}

    def close_window(self) -> None:
        self.departures = 0


def reduce_series(events: Iterable[dict], reducer: _Reducer,
                  width: float) -> EventSeries:
    """Fold an event stream into a fixed-width windowed series.

    Events must be in nondecreasing ``t`` order (EventLogs are — the
    simulator emits monotonically).  Empty windows between events are
    materialized so the series has a uniform time axis; events without
    a numeric ``t`` are ignored.
    """
    if width <= 0:
        raise ValueError(f"window width must be > 0, got {width!r}")
    out = EventSeries(reducer.name, width)
    window_start: Optional[float] = None
    for event in events:
        t = event.get("t")
        if not isinstance(t, (int, float)):
            continue
        if window_start is None:
            window_start = (t // width) * width
        while t >= window_start + width:
            out.points.append(SeriesPoint(window_start,
                                          reducer.snapshot()))
            reducer.close_window()
            window_start += width
        reducer.fold(event)
    if window_start is not None:
        out.points.append(SeriesPoint(window_start, reducer.snapshot()))
        reducer.close_window()
    return out


def queue_depth_series(events: Iterable[dict],
                       width: float) -> EventSeries:
    """Jobs waiting over simulation time (window width ``width``)."""
    return reduce_series(events, QueueDepthReducer(), width)


def busy_processors_series(events: Iterable[dict], width: float,
                           capacities: Optional[Sequence[int]] = None,
                           ) -> EventSeries:
    """Per-cluster busy processors (or utilization) over time."""
    return reduce_series(events, BusyProcessorsReducer(capacities),
                         width)


def placement_series(events: Iterable[dict],
                     width: float) -> EventSeries:
    """Placement fit/no-fit counts and fit rate per window."""
    return reduce_series(events, PlacementReducer(), width)


def throughput_series(events: Iterable[dict],
                      width: float) -> EventSeries:
    """Departures per window."""
    return reduce_series(events, ThroughputReducer(), width)


def render_series(series: EventSeries,
                  columns: Optional[Sequence[str]] = None,
                  width: int = 72, height: int = 12,
                  title: Optional[str] = None) -> str:
    """Terminal plot of a reduced series via
    :func:`repro.analysis.ascii_plot.line_plot`."""
    from repro.analysis.ascii_plot import line_plot

    names = list(columns) if columns is not None else series.columns()
    data = {name: series.series(name) for name in names}
    return line_plot(data, width=width, height=height,
                     x_label="sim time", y_label=series.name,
                     title=title if title is not None
                     else f"{series.name} (window {series.width:g})")
