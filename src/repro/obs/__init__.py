"""``repro.obs`` — the side-band observability layer.

Everything in this package observes; nothing decides.  The contract
(enforced by simlint SIM006 and pinned by
``tests/obs/test_golden_obs.py``): task keys, cached payloads and
simulation results are byte-identical with observability on or off, and
every wall-clock read in the repository lives under this package.

Components:

* :mod:`~repro.obs.gate` — the ``REPRO_OBS`` on/off switch and the
  ``.repro-obs`` artifact root;
* :mod:`~repro.obs.events` — schema-versioned JSONL event logs with an
  :class:`~repro.obs.events.ExportTracer` streaming simulator trace
  records in bounded memory;
* :mod:`~repro.obs.registry` — process-wide counters, gauges and
  histograms (:data:`~repro.obs.registry.REGISTRY`);
* :mod:`~repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`
  provenance records written per task, per cache entry and per saved
  sweep;
* :mod:`~repro.obs.progress` — heartbeat hooks (one primary display
  plus any number of subscribers) and the line-updating
  :class:`~repro.obs.progress.ProgressDisplay` behind ``--progress``;
* :mod:`~repro.obs.store` — the read side: a queryable
  :class:`~repro.obs.store.EventStore` over artifact roots, tolerant
  log iteration/validation, live :func:`~repro.obs.store.follow_events`
  tailing and streaming time-series reducers;
* :mod:`~repro.obs.spans` — campaign→task→attempt span assembly and
  Chrome trace-event export for Perfetto / ``chrome://tracing``;
* :mod:`~repro.obs.dash` — the live terminal dashboard behind
  ``repro-sim obs dash``;
* :mod:`~repro.obs.timing` — sanctioned wall-clock access and
  :class:`~repro.obs.timing.PhaseTimer`;
* :mod:`~repro.obs.profiling` — opt-in cProfile hotspot tables;
* :mod:`~repro.obs.worker` — the instrumented runner worker (imported
  lazily by :func:`repro.runner.execute`; not re-exported here to keep
  this package importable from inside ``repro.runner``).

See ``docs/observability.md`` for the event schema, manifest fields and
the determinism argument.
"""

from .events import (
    EVENT_SCHEMA,
    EventLog,
    ExportTracer,
    read_events,
    read_header,
    tail_events,
)
from .gate import (
    DEFAULT_OBS_DIR,
    OBS_DIR_ENV,
    OBS_ENV,
    obs_enabled,
    obs_root,
    set_enabled,
)
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    cache_manifest_path,
    config_hash,
    for_sweep,
    for_task,
    load_manifest,
    manifest_path,
    write_manifest,
)
from .profiling import hotspot_table, profile_call
from .progress import (
    ProgressDisplay,
    activate,
    deactivate,
    notify,
    subscribe,
    unsubscribe,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import (
    Marker,
    Span,
    SpanRecorder,
    export_chrome_trace,
    spans_from_obs,
    to_chrome_trace,
)
from .store import (
    EventSeries,
    EventStore,
    LogIssue,
    RunStream,
    follow_events,
    iter_log,
    reduce_series,
    validate_log,
)
from .timing import PhaseTimer, process_clock, wall_clock

__all__ = [
    "OBS_ENV", "OBS_DIR_ENV", "DEFAULT_OBS_DIR",
    "obs_enabled", "set_enabled", "obs_root",
    "EVENT_SCHEMA", "EventLog", "ExportTracer",
    "read_events", "read_header", "tail_events",
    "MANIFEST_SCHEMA", "RunManifest", "config_hash",
    "for_task", "for_sweep",
    "write_manifest", "load_manifest",
    "manifest_path", "cache_manifest_path",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "ProgressDisplay", "activate", "deactivate", "notify",
    "subscribe", "unsubscribe",
    "EventStore", "RunStream", "EventSeries", "LogIssue",
    "iter_log", "validate_log", "follow_events", "reduce_series",
    "Span", "Marker", "SpanRecorder",
    "spans_from_obs", "to_chrome_trace", "export_chrome_trace",
    "PhaseTimer", "wall_clock", "process_clock",
    "hotspot_table", "profile_call",
]
