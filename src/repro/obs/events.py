"""Schema-versioned JSONL export of simulation events.

An :class:`EventLog` is a write-once sink: a header line carrying the
schema tag, then the events.  Writes are batched — each subsequent
line is a JSON **array** holding one batch of up to
:data:`~EventLog.batch_size` event objects, encoded in a single codec
call (per-event encoding is the dominant cost of export; see
``benchmarks/bench_obs_overhead.py``).  A bare JSON object is also
accepted by the readers, so hand-written or line-per-event logs parse
too.  The log is finalized atomically — staged at ``<path>.tmp`` and
``os.replace``d into place on :meth:`close`, so a crash mid-run never
leaves a half-written log where readers look.

:class:`ExportTracer` adapts the sink to the simulator's
:class:`~repro.sim.trace.Tracer` interface with **zero storage**: every
record passing the kind filter streams straight to the log, so a
10⁶-event run exports in bounded memory.

Readers (:func:`read_events`, :func:`tail_events`) validate the schema
header and yield plain dicts ``{"t": time, "kind": ..., **payload}``.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from types import TracebackType
from typing import Iterable, Iterator, Optional, Type, Union

from repro.sim.trace import Tracer, TraceRecord

__all__ = ["EVENT_SCHEMA", "EVENT_SCHEMAS", "SERVICE_EVENT_SCHEMAS",
           "EventLog", "ExportTracer", "read_events", "read_header",
           "tail_events"]


def _jsonify(value: object) -> object:
    """Last-resort JSON encoding for free-form trace payloads."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)  # type: ignore[type-var]
    return repr(value)


try:  # batch encoding is the hot path of export; prefer the C codec
    import orjson as _orjson

    def _encode_batch(batch: list) -> bytes:
        return _orjson.dumps(batch, option=_orjson.OPT_SORT_KEYS,
                             default=_jsonify)
except ImportError:  # pragma: no cover - exercised where orjson is absent
    _stdlib_encode = json.JSONEncoder(sort_keys=True, separators=(",", ":"),
                                      default=_jsonify).encode

    def _encode_batch(batch: list) -> bytes:
        return _stdlib_encode(batch).encode("utf-8")

#: Versioned shape tag of the JSONL event stream; bump on change.
EVENT_SCHEMA = "repro.obs/events/1"

#: Registered payload keys per event kind — the contract between the
#: hot-path emit sites (which build row dicts by hand for speed) and
#: every downstream log consumer.  ``t`` and ``kind`` are implicit on
#: all rows.  simlint's SIM011 statically checks each
#: ``Tracer.emit_row`` literal against this table, so drift between an
#: emit site and the schema fails the lint gate instead of surfacing
#: months later in a log replay.  Keep values as literal frozensets:
#: the checker reads this dict from the AST.
EVENT_SCHEMAS = {
    "arrival": frozenset({"job", "size", "queue"}),
    "start": frozenset({"job", "assignment"}),
    "departure": frozenset({"job"}),
    "placement_fit": frozenset({"job", "queue", "assignment"}),
    "placement_no_fit": frozenset({"job", "queue"}),
    "queue_disable": frozenset({"queue", "order"}),
    "queue_enable": frozenset({"queue", "order"}),
    "queue_reenable": frozenset({"queue", "order"}),
}

#: Payload keys per event kind on a *campaign stream* — the wire format
#: the sweep service (:mod:`repro.service`) answers ``submit``/``attach``
#: requests with.  A stream is framed exactly like an on-disk event
#: log (an :data:`EVENT_SCHEMA` header line, then one JSON object per
#: line; ``t`` is a per-stream monotone sequence number, not a clock),
#: so :func:`read_events` parses a captured stream unchanged.  Kept
#: separate from :data:`EVENT_SCHEMAS` because those kinds are the
#: simulator's trace contract checked by simlint's SIM011 at the
#: ``emit_row`` sites; these are the service's.  ``t`` and ``kind``
#: are implicit on all rows.
SERVICE_EVENT_SCHEMAS = {
    "campaign-begin": frozenset({"campaign", "campaign_kind", "label",
                                 "planned"}),
    "heartbeat": frozenset({"phase", "key", "description"}),
    "point": frozenset({"key", "index", "status", "point"}),
    "campaign-finish": frozenset({"campaign", "points"}),
    "error": frozenset({"message"}),
}

PathLike = Union[str, Path]


class EventLog:
    """A batched, atomically-finalized JSONL event sink.

    Parameters
    ----------
    path:
        Final location of the log.  Until :meth:`close` the data lives
        at ``<path>.tmp``; readers never observe a partial log at
        ``path``.
    batch_size:
        Events buffered between writes.
    meta:
        Extra JSON-scalar fields merged into the header line (task key,
        policy, ...).
    """

    def __init__(self, path: PathLike, *, batch_size: int = 2048,
                 meta: Optional[dict] = None) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {batch_size!r}")
        self.path = Path(path)
        self.batch_size = batch_size
        self._flushed = 0
        self._buffer: list[dict] = []
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._staging = self.path.with_name(self.path.name + ".tmp")
        self._fh = open(self._staging, "wb")
        header = {"schema": EVENT_SCHEMA}
        if meta:
            header.update(meta)
        self._fh.write(json.dumps(header, sort_keys=True).encode("utf-8")
                       + b"\n")
        self._fh.flush()

    @property
    def events_written(self) -> int:
        """Total events emitted (flushed plus still buffered)."""
        return self._flushed + len(self._buffer)

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Append one event (buffered)."""
        if self._closed:
            raise ValueError(f"event log {self.path} is closed")
        self._buffer.append({"t": time, "kind": kind, **payload})
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def record(self, record: TraceRecord) -> None:
        """Sink adapter for :class:`~repro.sim.trace.Tracer`."""
        self.emit(record.time, record.kind, **record.payload)

    def flush(self) -> None:
        """Write the buffered batch through to the staging file.

        The whole batch is encoded in one codec call as a JSON array
        and written as one line.
        """
        if self._buffer:
            self._fh.write(_encode_batch(self._buffer) + b"\n")
            self._flushed += len(self._buffer)
            self._buffer.clear()
            self._fh.flush()

    def close(self) -> None:
        """Flush, close and atomically publish the log at ``path``."""
        if self._closed:
            return
        self.flush()
        self._fh.close()
        os.replace(self._staging, self.path)
        self._closed = True

    def abandon(self) -> None:
        """Close and delete the staging file without publishing."""
        if self._closed:
            return
        self._fh.close()
        self._staging.unlink(missing_ok=True)
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the log has been finalized (or abandoned)."""
        return self._closed

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<EventLog {self.path} events={self.events_written} "
                f"{state}>")


class ExportTracer(Tracer):
    """A tracer that streams every record to an :class:`EventLog`.

    Nothing is stored in memory (``records`` stays empty); the kind
    filter still applies and still counts ``filtered``.
    """

    def __init__(self, log: EventLog,
                 kinds: Optional[Iterable[str]] = None) -> None:
        super().__init__(kinds=kinds)
        self.log = log
        if kinds is None:
            # The common worker path exports every kind.  Shadow the
            # class method with a closure so the per-event call skips
            # method binding and every ``self.`` attribute hop — this
            # runs once per simulation event and the difference is
            # measurable (benchmarks/bench_obs_overhead.py).  The
            # log's buffer is cleared in place by flush(), so its
            # identity is stable and safe to close over.
            buffer = log._buffer
            batch_size = log.batch_size
            flush = log.flush

            def emit_row(row: dict) -> None:
                # The caller's row dict is buffered as-is; key order
                # is irrelevant (the encoder sorts).  No closed check
                # — the tracer only lives inside the log's ``with``
                # block, and a late write still fails at flush.
                buffer.append(row)
                if len(buffer) >= batch_size:
                    flush()

            self.emit_row = emit_row  # type: ignore[method-assign]

    def emit(self, time: float, kind: str, **payload: object) -> None:
        """Stream one event to the log (no in-memory storage)."""
        if self.kinds is not None and kind not in self.kinds:
            self.filtered += 1
            return
        payload["t"] = time
        payload["kind"] = kind
        buffer = self.log._buffer
        buffer.append(payload)
        if len(buffer) >= self.log.batch_size:
            self.log.flush()

    def emit_row(self, row: dict) -> None:
        """Stream one prebuilt row to the log (kind-filtered path)."""
        if self.kinds is not None and row["kind"] not in self.kinds:
            self.filtered += 1
            return
        buffer = self.log._buffer
        buffer.append(row)
        if len(buffer) >= self.log.batch_size:
            self.log.flush()

    def __repr__(self) -> str:
        return f"<ExportTracer -> {self.log.path}>"


def read_events(path: PathLike) -> Iterator[dict]:
    """Yield the events of a finalized log, validating the header.

    Raises ``ValueError`` when the file is not a
    :data:`EVENT_SCHEMA`-tagged log.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a JSONL event log "
                             f"({exc})") from None
        if not isinstance(header, dict) \
                or header.get("schema") != EVENT_SCHEMA:
            raise ValueError(
                f"{path}: schema tag "
                f"{header.get('schema') if isinstance(header, dict) else header!r} "
                f"!= {EVENT_SCHEMA!r}"
            )
        for line in fh:
            line = line.strip()
            if not line:
                continue
            parsed = json.loads(line)
            if isinstance(parsed, list):  # one flushed batch per line
                yield from parsed
            else:
                yield parsed


def read_header(path: PathLike) -> dict:
    """The header line of a finalized log (schema + meta fields)."""
    with open(path, "r", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
    if not isinstance(header, dict) \
            or header.get("schema") != EVENT_SCHEMA:
        raise ValueError(f"{path}: not a {EVENT_SCHEMA!r} event log")
    return header


def tail_events(path: PathLike, n: int = 10) -> list[dict]:
    """The last ``n`` events of a finalized log, in order."""
    window: deque[dict] = deque(maxlen=max(n, 0))
    for event in read_events(path):
        window.append(event)
    return list(window)
