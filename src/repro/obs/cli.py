"""Implementations behind the ``repro-sim obs`` command group.

Read-side tools over the artifacts the runner produces:

* :func:`summary` — aggregate every :class:`RunManifest` under an
  artifact root (task counts by cache status, wall-clock, engine
  counters);
* :func:`tail` — the last N events of a JSONL event log, with
  kind/time filters and ``--follow`` live tailing;
* :func:`validate` — audit one log (or every log under an artifact
  root) against the registered event schemas, line numbers included;
* :func:`dash` — the live terminal dashboard
  (:mod:`repro.obs.dash`);
* :func:`export_trace` — Chrome trace-event JSON for
  Perfetto / ``chrome://tracing`` (:mod:`repro.obs.spans`);
* :func:`show_manifest` — one manifest, located by (a prefix of) its
  task key;
* :func:`profile_run` — one simulation run under cProfile with a
  hotspot table.

All functions print to a stream and return a process exit code; the
argument parsing lives in :mod:`repro.cli`.  Readers are tolerant by
design: a truncated final batch line (a worker killed mid-flush) or an
empty log is reported and skipped, never raised.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO

from .events import read_header
from .gate import obs_root
from .manifest import RunManifest, load_manifest
from .profiling import profile_call
from .store import LogIssue, follow_events, iter_log, validate_log

__all__ = ["summary", "tail", "validate", "dash", "export_trace",
           "show_manifest", "profile_run"]


def _resolve_root(directory: Optional[str]) -> Path:
    return Path(directory) if directory else obs_root()


def _iter_manifests(root: Path):
    for path in sorted((root / "manifests").glob("*/*.json")):
        try:
            yield load_manifest(path)
        except (ValueError, OSError, json.JSONDecodeError):
            continue


def summary(directory: Optional[str] = None,
            log: Optional[str] = None,
            stream: Optional[TextIO] = None) -> int:
    """Aggregate manifests under an artifact root (or one event log)."""
    out = stream if stream is not None else sys.stdout
    if log is not None:
        return _summarize_log(Path(log), out)
    root = _resolve_root(directory)
    manifests = list(_iter_manifests(root))
    if not manifests:
        print(f"no manifests under {root}", file=out)
        return 1
    statuses: dict[str, int] = {}
    policies: dict[str, int] = {}
    wall = 0.0
    timed = 0
    counters: dict[str, int] = {}
    for m in manifests:
        statuses[m.cache_status] = statuses.get(m.cache_status, 0) + 1
        policies[m.policy] = policies.get(m.policy, 0) + 1
        if m.wall_clock_s is not None:
            wall += m.wall_clock_s
            timed += 1
        for name, value in m.metrics.items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + int(value)
    print(f"artifact root      {root}", file=out)
    print(f"manifests          {len(manifests)}", file=out)
    print("by cache status    "
          + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items())),
          file=out)
    print("by policy          "
          + ", ".join(f"{k}={v}" for k, v in sorted(policies.items())),
          file=out)
    if timed:
        print(f"wall-clock         {wall:.3f} s over {timed} timed runs "
              f"(mean {wall / timed:.3f} s)", file=out)
    if counters:
        print("engine counters:", file=out)
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            print(f"  {name:<{width}}  {value}", file=out)
    return 0


def _report_issues(issues: Iterable[LogIssue], out: TextIO) -> int:
    count = 0
    for issue in issues:
        count += 1
        print(f"warning: {issue}", file=out)
    return count


def _summarize_log(path: Path, out: TextIO) -> int:
    """Summarise one event log, surviving truncation and emptiness.

    A log left behind by a crashed worker (truncated final batch, or
    nothing past the header) is summarised from its parseable prefix
    with a warning per skipped line — the one artifact that explains a
    failure must never be the one the tooling refuses to read.
    """
    issues: list[LogIssue] = []
    try:
        header = read_header(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    kinds: dict[str, int] = {}
    count = 0
    first = last = None
    for event in iter_log(path, strict=False, on_issue=issues.append):
        count += 1
        kinds[event.get("kind", "?")] = kinds.get(
            event.get("kind", "?"), 0) + 1
        if first is None:
            first = event.get("t")
        last = event.get("t")
    print(f"event log          {path}", file=out)
    print(f"schema             {header.get('schema')}", file=out)
    if header.get("task"):
        print(f"task               {header['task']}", file=out)
    print(f"events             {count}", file=out)
    if count and isinstance(first, (int, float)) \
            and isinstance(last, (int, float)):
        print(f"sim-time span      {first:g} .. {last:g}", file=out)
    if count:
        width = max(len(kind) for kind in kinds)
        for kind, n in sorted(kinds.items()):
            print(f"  {kind:<{width}}  {n}", file=out)
    _report_issues(issues, out)
    return 0


def _tail_filtered(log: str, n: int,
                   kinds: Optional[Iterable[str]],
                   since: Optional[float], until: Optional[float],
                   issues: list) -> Iterator[dict]:
    buffered: deque = deque(maxlen=n if n > 0 else None)
    buffered.extend(iter_log(log, kinds=kinds, since=since, until=until,
                             strict=False, on_issue=issues.append))
    return iter(buffered)


def tail(log: str, n: int = 10,
         kinds: Optional[Iterable[str]] = None,
         since: Optional[float] = None,
         until: Optional[float] = None,
         follow: bool = False,
         timeout: Optional[float] = None,
         stream: Optional[TextIO] = None) -> int:
    """Print the last ``n`` events of a JSONL event log.

    ``kinds``/``since``/``until`` filter what counts; ``follow``
    switches to live tailing of a log still being written (all events
    as they are flushed, until the log is finalized or ``timeout``
    seconds pass).  Truncated or malformed lines are reported as
    warnings and skipped — tailing the log of a crashed worker is the
    primary use case.
    """
    out = stream if stream is not None else sys.stdout
    issues: list[LogIssue] = []
    if follow:
        for event in follow_events(log, kinds=kinds, timeout=timeout,
                                   on_issue=issues.append):
            print(json.dumps(event, sort_keys=True), file=out)
            out.flush()
        _report_issues(issues, out)
        return 0
    path = Path(log)
    if not path.exists():
        print(f"error: no such event log: {path}", file=out)
        return 1
    events = _tail_filtered(log, n, kinds, since, until, issues)
    for event in events:
        print(json.dumps(event, sort_keys=True), file=out)
    _report_issues(issues, out)
    return 0


def _logs_under(root: Path) -> list[Path]:
    return sorted((root / "events").glob("*/*.jsonl"))


def validate(target: str,
             stream: Optional[TextIO] = None) -> int:
    """Audit event logs against :data:`~repro.obs.events.EVENT_SCHEMAS`.

    ``target`` is one JSONL log, or an artifact root whose every log
    under ``events/`` is audited.  Each violation prints with its line
    number; the exit code is 0 only when every event of every log
    conforms.
    """
    out = stream if stream is not None else sys.stdout
    path = Path(target)
    if path.is_dir():
        logs = _logs_under(path)
        if not logs:
            print(f"no event logs under {path}", file=out)
            return 1
    else:
        logs = [path]
    total_events = 0
    total_issues = 0
    for log in logs:
        count, issues = validate_log(log)
        total_events += count
        total_issues += len(issues)
        for issue in issues:
            print(str(issue), file=out)
    print(f"validated {total_events} events across {len(logs)} "
          f"log(s): "
          + (f"{total_issues} issue(s)" if total_issues else "clean"),
          file=out)
    return 1 if total_issues else 0


def dash(directory: Optional[str] = None,
         cache_dir: Optional[str] = None,
         interval: float = 1.0,
         iterations: Optional[int] = None,
         duration: Optional[float] = None,
         stream: Optional[TextIO] = None) -> int:
    """Run the live dashboard (one-shot snapshot on a non-TTY)."""
    from .dash import run_dashboard

    frames = run_dashboard(_resolve_root(directory), cache_dir,
                           interval=interval, iterations=iterations,
                           duration=duration, stream=stream)
    return 0 if frames else 1


def export_trace(directory: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 out_path: str = "trace.json",
                 stream: Optional[TextIO] = None) -> int:
    """Export campaign spans as Chrome trace-event JSON.

    Load the result in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: campaigns, tasks and every attempt —
    including failed ones — appear as nested tracks.
    """
    from .spans import export_chrome_trace, spans_from_obs

    out = stream if stream is not None else sys.stdout
    root = _resolve_root(directory)
    spans, markers = spans_from_obs(root, cache_dir)
    if not spans and not markers:
        print(f"no run manifests under {root}; nothing to export",
              file=out)
        return 1
    export_chrome_trace((spans, markers), out_path)
    print(f"wrote {len(spans)} span(s) and {len(markers)} marker(s) "
          f"to {out_path}", file=out)
    return 0


def _find_manifest(root: Path, key: str) -> Optional[RunManifest]:
    exact = root / "manifests" / key[:2] / f"{key}.json"
    if exact.exists():
        return load_manifest(exact)
    matches = sorted((root / "manifests").glob(f"*/{key}*.json"))
    if len(matches) == 1:
        return load_manifest(matches[0])
    return None


def show_manifest(key: str, directory: Optional[str] = None,
                  stream: Optional[TextIO] = None) -> int:
    """Pretty-print the manifest whose task key starts with ``key``."""
    out = stream if stream is not None else sys.stdout
    root = _resolve_root(directory)
    manifest = _find_manifest(root, key)
    if manifest is None:
        print(f"no unique manifest for key {key!r} under {root}",
              file=out)
        return 1
    print(json.dumps(manifest.to_dict(), indent=1, sort_keys=True),
          file=out)
    return 0


def profile_run(config, size_distribution, service_distribution,
                utilization: float, top: int = 20,
                stream: Optional[TextIO] = None) -> int:
    """Profile one open-system run and print the hotspot table."""
    out = stream if stream is not None else sys.stdout
    import repro.analysis  # noqa: F401  (runner needs analysis loaded)
    from repro.runner.task import RunTask
    from repro.runner.worker import run_task

    task = RunTask(config, size_distribution, service_distribution,
                   utilization)
    point, table = profile_call(run_task, task, top=top)
    print(f"profiled {task.describe()}: "
          f"mean response {point.mean_response:.1f}", file=out)
    print(table, file=out)
    return 0
