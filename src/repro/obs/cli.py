"""Implementations behind the ``repro-sim obs`` command group.

Four read-side tools over the artifacts the runner produces:

* :func:`summary` — aggregate every :class:`RunManifest` under an
  artifact root (task counts by cache status, wall-clock, engine
  counters);
* :func:`tail` — the last N events of a JSONL event log;
* :func:`show_manifest` — one manifest, located by (a prefix of) its
  task key;
* :func:`profile_run` — one simulation run under cProfile with a
  hotspot table.

All functions print to a stream and return a process exit code; the
argument parsing lives in :mod:`repro.cli`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, TextIO

from .events import read_events, read_header, tail_events
from .gate import obs_root
from .manifest import RunManifest, load_manifest
from .profiling import profile_call

__all__ = ["summary", "tail", "show_manifest", "profile_run"]


def _resolve_root(directory: Optional[str]) -> Path:
    return Path(directory) if directory else obs_root()


def _iter_manifests(root: Path):
    for path in sorted((root / "manifests").glob("*/*.json")):
        try:
            yield load_manifest(path)
        except (ValueError, OSError, json.JSONDecodeError):
            continue


def summary(directory: Optional[str] = None,
            log: Optional[str] = None,
            stream: Optional[TextIO] = None) -> int:
    """Aggregate manifests under an artifact root (or one event log)."""
    out = stream if stream is not None else sys.stdout
    if log is not None:
        return _summarize_log(Path(log), out)
    root = _resolve_root(directory)
    manifests = list(_iter_manifests(root))
    if not manifests:
        print(f"no manifests under {root}", file=out)
        return 1
    statuses: dict[str, int] = {}
    policies: dict[str, int] = {}
    wall = 0.0
    timed = 0
    counters: dict[str, int] = {}
    for m in manifests:
        statuses[m.cache_status] = statuses.get(m.cache_status, 0) + 1
        policies[m.policy] = policies.get(m.policy, 0) + 1
        if m.wall_clock_s is not None:
            wall += m.wall_clock_s
            timed += 1
        for name, value in m.metrics.items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + int(value)
    print(f"artifact root      {root}", file=out)
    print(f"manifests          {len(manifests)}", file=out)
    print("by cache status    "
          + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items())),
          file=out)
    print("by policy          "
          + ", ".join(f"{k}={v}" for k, v in sorted(policies.items())),
          file=out)
    if timed:
        print(f"wall-clock         {wall:.3f} s over {timed} timed runs "
              f"(mean {wall / timed:.3f} s)", file=out)
    if counters:
        print("engine counters:", file=out)
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            print(f"  {name:<{width}}  {value}", file=out)
    return 0


def _summarize_log(path: Path, out: TextIO) -> int:
    try:
        header = read_header(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    kinds: dict[str, int] = {}
    count = 0
    first = last = None
    for event in read_events(path):
        count += 1
        kinds[event.get("kind", "?")] = kinds.get(
            event.get("kind", "?"), 0) + 1
        if first is None:
            first = event.get("t")
        last = event.get("t")
    print(f"event log          {path}", file=out)
    print(f"schema             {header.get('schema')}", file=out)
    if header.get("task"):
        print(f"task               {header['task']}", file=out)
    print(f"events             {count}", file=out)
    if count:
        print(f"sim-time span      {first:g} .. {last:g}", file=out)
        width = max(len(kind) for kind in kinds)
        for kind, n in sorted(kinds.items()):
            print(f"  {kind:<{width}}  {n}", file=out)
    return 0


def tail(log: str, n: int = 10,
         stream: Optional[TextIO] = None) -> int:
    """Print the last ``n`` events of a JSONL event log."""
    out = stream if stream is not None else sys.stdout
    try:
        events = tail_events(log, n)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=out)
        return 1
    for event in events:
        print(json.dumps(event, sort_keys=True), file=out)
    return 0


def _find_manifest(root: Path, key: str) -> Optional[RunManifest]:
    exact = root / "manifests" / key[:2] / f"{key}.json"
    if exact.exists():
        return load_manifest(exact)
    matches = sorted((root / "manifests").glob(f"*/{key}*.json"))
    if len(matches) == 1:
        return load_manifest(matches[0])
    return None


def show_manifest(key: str, directory: Optional[str] = None,
                  stream: Optional[TextIO] = None) -> int:
    """Pretty-print the manifest whose task key starts with ``key``."""
    out = stream if stream is not None else sys.stdout
    root = _resolve_root(directory)
    manifest = _find_manifest(root, key)
    if manifest is None:
        print(f"no unique manifest for key {key!r} under {root}",
              file=out)
        return 1
    print(json.dumps(manifest.to_dict(), indent=1, sort_keys=True),
          file=out)
    return 0


def profile_run(config, size_distribution, service_distribution,
                utilization: float, top: int = 20,
                stream: Optional[TextIO] = None) -> int:
    """Profile one open-system run and print the hotspot table."""
    out = stream if stream is not None else sys.stdout
    import repro.analysis  # noqa: F401  (runner needs analysis loaded)
    from repro.runner.task import RunTask
    from repro.runner.worker import run_task

    task = RunTask(config, size_distribution, service_distribution,
                   utilization)
    point, table = profile_call(run_task, task, top=top)
    print(f"profiled {task.describe()}: "
          f"mean response {point.mean_response:.1f}", file=out)
    print(table, file=out)
    return 0
