"""Opt-in cProfile hooks with top-N hotspot tables.

Profiling answers the ROADMAP question "where does wall-clock go?"
without touching the simulation: :func:`profile_call` runs any callable
under :mod:`cProfile` and renders the hottest functions as a compact
table; the CLI exposes it as ``repro-sim sweep --profile`` and
``repro-sim obs profile``.

The profiler observes only; results are returned unchanged, so the
determinism contract holds (profiled runs produce byte-identical
payloads — merely slower).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Tuple

__all__ = ["profile_call", "hotspot_table"]


def hotspot_table(stats: pstats.Stats, top: int = 20) -> str:
    """The ``top`` hottest functions by cumulative time, as text."""
    buf = io.StringIO()
    stats.stream = buf  # type: ignore[attr-defined]
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    return buf.getvalue().rstrip()


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 20,
                 **kwargs: Any) -> Tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, table)`` where ``table`` is the top-``top``
    hotspot listing.  The call's return value is passed through
    untouched.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    return result, hotspot_table(stats, top=top)
