"""Wall-clock access and phase timers — the *only* module family that
may read the host clock.

Simulators must never let wall-clock time influence results (simlint
SIM001/SIM006 enforce this), but observability *is about* wall-clock:
where does real time go?  The compromise: every ``time.*`` read in the
repository flows through ``repro.obs``, which is excluded from SIM006's
scope, and obs data never feeds back into task keys or payloads.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Iterator, Optional, Type

__all__ = ["wall_clock", "process_clock", "PhaseTimer"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``)."""
    return time.perf_counter()


def process_clock() -> float:
    """CPU seconds of the current process (``time.process_time``)."""
    return time.process_time()


class _Phase:
    """Context manager timing one phase of a :class:`PhaseTimer`."""

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Phase":
        self._t0 = wall_clock()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self._timer.add(self._name, wall_clock() - self._t0)


class PhaseTimer:
    """Accumulates named wall-clock phases for a progress summary.

    Usage::

        timer = PhaseTimer()
        with timer.phase("simulate"):
            ...
        with timer.phase("render"):
            ...
        print(timer.render())

    Re-entering a phase name accumulates; insertion order is kept for
    display.
    """

    def __init__(self) -> None:
        self.durations: dict[str, float] = {}

    def phase(self, name: str) -> _Phase:
        """A context manager timing one (re-enterable) phase."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name``."""
        self.durations[name] = self.durations.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self.durations.values())

    def items(self) -> Iterator[tuple[str, float]]:
        """(name, seconds) pairs in insertion order."""
        return iter(self.durations.items())

    def render(self) -> str:
        """A small fixed-width table of phases and durations."""
        if not self.durations:
            return "(no phases timed)"
        width = max(len(name) for name in self.durations)
        total = self.total
        lines = ["phase timers:"]
        for name, seconds in self.durations.items():
            share = seconds / total if total > 0 else 0.0
            lines.append(f"  {name:<{width}}  {seconds:8.3f} s"
                         f"  {share:6.1%}")
        lines.append(f"  {'total':<{width}}  {total:8.3f} s")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<PhaseTimer phases={len(self.durations)} " \
               f"total={self.total:.3f}s>"
