"""Hierarchical campaign spans with a Chrome trace-event exporter.

A campaign is a tree of timed work: the campaign itself, the tasks it
plans, and every execution *attempt* each task took (first tries,
retries after transient faults, replacements after crashes and
timeouts).  This module derives that tree two ways and exports it as
Chrome trace-event JSON, so any campaign opens in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` and retries, hangs,
cache hits and worker replacement become visually inspectable.

* :class:`SpanRecorder` — the **live** derivation.  It subscribes to
  the runner's progress heartbeats (:mod:`repro.obs.progress`), so it
  sees ``campaign-begin``/``campaign-finish`` from
  :mod:`repro.runner.campaign`, ``start``/``retry``/``finish``/``fail``
  per task and ``attempt-failed`` (with the failure cause) from the
  execution backend — enough to time every attempt individually,
  including the failed ones.  Recording is strictly side-band: the
  recorder only listens, and results are byte-identical with or
  without it attached (pinned by ``tests/obs/test_golden_obs.py``).
* :func:`spans_from_obs` — the **post-hoc** derivation, for campaigns
  that already ran.  It rebuilds coarser spans from the artifacts on
  disk: :class:`~repro.runner.campaign.SweepManifest` files name each
  campaign's planned tasks, and per-task
  :class:`~repro.obs.manifest.RunManifest` records carry wall-clock,
  creation time and the final ``attempts`` count.

Both produce plain :class:`Span` / :class:`Marker` lists;
:func:`to_chrome_trace` / :func:`export_chrome_trace` turn either into
a trace file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from . import progress as _progress
from .manifest import RunManifest
from .timing import wall_clock

__all__ = [
    "Span",
    "Marker",
    "SpanRecorder",
    "spans_from_obs",
    "to_chrome_trace",
    "export_chrome_trace",
]

PathLike = Union[str, Path]

#: Span categories, outermost first.
CATEGORIES = ("campaign", "task", "attempt")


@dataclass
class Span:
    """One timed slice of campaign work.

    Times are seconds on whichever clock produced the span (the
    monotonic wall clock live, unix time post-hoc); the exporter
    rebases everything onto the earliest timestamp, so the origin
    never matters.
    """

    name: str
    category: str  # one of CATEGORIES
    track: str  # Perfetto thread lane ("campaign", "task 1", ...)
    start: float
    end: Optional[float] = None  # None = still open
    status: str = "ok"  # "ok" | "failed" | "open"
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds covered, or ``None`` while open."""
        return None if self.end is None else self.end - self.start


@dataclass(frozen=True)
class Marker:
    """An instant event (cache hit, give-up) on a track."""

    name: str
    track: str
    t: float
    args: dict = field(default_factory=dict)


class SpanRecorder:
    """Build attempt-level spans from live runner heartbeats.

    Usage::

        recorder = SpanRecorder()
        with recorder:                      # subscribes to heartbeats
            sweep(...)                      # any campaign
        export_chrome_trace(recorder, "campaign.trace.json")

    The recorder assigns each task its own Perfetto lane in first-seen
    order; every attempt becomes one span on that lane (failed
    attempts carry their cause in ``args``), nested under a task span,
    under the campaign span on lane 0.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.markers: list[Marker] = []
        self._campaign: Optional[Span] = None
        self._tasks: dict[str, Span] = {}
        self._attempts: dict[str, Span] = {}
        self._attempt_counts: dict[str, int] = {}
        self._lanes: dict[str, str] = {}

    # -- subscription --------------------------------------------------------

    def attach(self) -> "SpanRecorder":
        """Subscribe to the process-wide heartbeat stream."""
        _progress.subscribe(self.on_event)
        return self

    def detach(self) -> None:
        """Unsubscribe and close any spans left open (status "open")."""
        _progress.unsubscribe(self.on_event)
        now = wall_clock()
        for span in self._open_spans():
            span.end = now
            span.status = "open"
        self._attempts.clear()
        self._tasks.clear()
        self._campaign = None

    def __enter__(self) -> "SpanRecorder":
        return self.attach()

    def __exit__(self, *exc: object) -> None:
        self.detach()

    def _open_spans(self) -> list[Span]:
        out = [s for s in self._attempts.values() if s.end is None]
        out.extend(s for s in self._tasks.values() if s.end is None)
        if self._campaign is not None and self._campaign.end is None:
            out.append(self._campaign)
        return out

    # -- heartbeat consumption -----------------------------------------------

    def _lane(self, key: str) -> str:
        lane = self._lanes.get(key)
        if lane is None:
            lane = f"task {len(self._lanes) + 1} [{key[:10]}]"
            self._lanes[key] = lane
        return lane

    def _open_attempt(self, key: str, description: str,
                      now: float) -> None:
        number = self._attempt_counts.get(key, 0) + 1
        self._attempt_counts[key] = number
        span = Span(name=f"attempt {number}", category="attempt",
                    track=self._lane(key), start=now,
                    args={"key": key, "attempt": number,
                          "task": description})
        self._attempts[key] = span
        self.spans.append(span)

    def _close_attempt(self, key: str, now: float, status: str,
                       cause: str = "") -> None:
        span = self._attempts.pop(key, None)
        if span is None:
            return
        span.end = now
        span.status = status
        if cause:
            span.args["cause"] = cause

    def on_event(self, kind: str, key: str, description: str) -> None:
        """Heartbeat consumer (see :mod:`repro.obs.progress`)."""
        now = wall_clock()
        if kind == "campaign-begin":
            self._campaign = Span(name=description, category="campaign",
                                  track="campaign", start=now,
                                  args={"campaign": key})
            self.spans.append(self._campaign)
        elif kind == "campaign-finish":
            if self._campaign is not None and key == \
                    self._campaign.args.get("campaign"):
                self._campaign.end = now
                self._campaign = None
        elif kind == "start":
            span = Span(name=description, category="task",
                        track=self._lane(key), start=now,
                        args={"key": key})
            self._tasks[key] = span
            self.spans.append(span)
            self._open_attempt(key, description, now)
        elif kind == "attempt-failed":
            self._close_attempt(key, now, "failed", description)
        elif kind == "retry":
            # The failed attempt was closed by its attempt-failed
            # heartbeat; the retry opens the next one (its span starts
            # now, so deterministic backoff shows as a gap between
            # attempts — exactly what a trace viewer should show).
            self._open_attempt(key, description, now)
        elif kind == "finish":
            self._close_attempt(key, now, "ok")
            task = self._tasks.pop(key, None)
            if task is not None:
                task.end = now
                task.args["attempts"] = self._attempt_counts.get(key, 1)
        elif kind == "fail":
            self._close_attempt(key, now, "failed")
            task = self._tasks.pop(key, None)
            if task is not None:
                task.end = now
                task.status = "failed"
                task.args["attempts"] = self._attempt_counts.get(key, 1)
        elif kind == "hit":
            self.markers.append(Marker(name="cache hit",
                                       track=self._lane(key), t=now,
                                       args={"key": key,
                                             "task": description}))

    def __repr__(self) -> str:
        return (f"<SpanRecorder spans={len(self.spans)} "
                f"markers={len(self.markers)}>")


def spans_from_obs(root: PathLike,
                   cache_root: Optional[PathLike] = None,
                   ) -> tuple[list[Span], list[Marker]]:
    """Rebuild spans for finished campaigns from on-disk artifacts.

    Task spans come from each :class:`RunManifest`'s creation time and
    wall-clock (the manifest is written when the run ends, so the span
    is ``[created - wall_clock, created]``); retries show up through
    the recorded ``attempts`` count — attempts before the successful
    one have no surviving timing, so they are represented as markers
    at the span start.  With ``cache_root`` given, sweep manifests
    under ``<cache_root>/sweeps/`` contribute campaign spans covering
    their tasks.
    """
    from .store import EventStore

    spans: list[Span] = []
    markers: list[Marker] = []
    store = EventStore(root)
    runs = store.runs()
    by_key: dict[str, RunManifest] = {s.key: s.manifest for s in runs}
    lane_of: dict[str, str] = {}
    for n, stream in enumerate(runs, start=1):
        m = stream.manifest
        if m.kind != "task":
            continue
        lane = f"task {n} [{m.key[:10]}]"
        lane_of[m.key] = lane
        wall = m.wall_clock_s or 0.0
        end = m.created_unix
        start = end - wall
        span = Span(name=m.description, category="task", track=lane,
                    start=start, end=end,
                    args={"key": m.key, "policy": m.policy,
                          "seed": m.seed, "attempts": m.attempts,
                          "cache_status": m.cache_status})
        spans.append(span)
        for attempt in range(1, m.attempts):
            markers.append(Marker(
                name=f"failed attempt {attempt}", track=lane, t=start,
                args={"key": m.key, "attempt": attempt}))
        if m.cache_status == "hit":
            markers.append(Marker(name="cache hit", track=lane, t=end,
                                  args={"key": m.key}))
    if cache_root is not None:
        spans.extend(_campaign_spans(Path(cache_root), by_key))
    return spans, markers


def _campaign_spans(cache_root: Path,
                    by_key: dict[str, RunManifest]) -> list[Span]:
    """Campaign spans covering the tasks their sweep manifests name."""
    from repro.runner.campaign import SweepManifest

    out: list[Span] = []
    for path in sorted((cache_root / "sweeps").glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = SweepManifest.from_dict(json.load(fh))
        except (OSError, json.JSONDecodeError, ValueError, TypeError):
            continue
        ends = []
        starts = []
        for key in manifest.task_keys:
            m = by_key.get(key)
            if m is None:
                continue
            ends.append(m.created_unix)
            starts.append(m.created_unix - (m.wall_clock_s or 0.0))
        if not starts:
            continue
        out.append(Span(
            name=f"{manifest.kind} {manifest.label}",
            category="campaign", track="campaign",
            start=min(starts), end=max(ends),
            args={"campaign": manifest.campaign,
                  "status": manifest.status,
                  "planned": len(manifest.task_keys)}))
    return out


SpanSource = Union[SpanRecorder,
                   tuple[Sequence[Span], Sequence[Marker]]]


def _split(source: SpanSource) -> tuple[Sequence[Span],
                                        Sequence[Marker]]:
    if isinstance(source, SpanRecorder):
        return source.spans, source.markers
    spans, markers = source
    return spans, markers


def to_chrome_trace(source: SpanSource) -> dict:
    """Spans + markers → a Chrome trace-event JSON object.

    The format is the Trace Event Format's JSON-object flavour
    (``{"traceEvents": [...]}``) using complete ("X") events for spans
    and instant ("i") events for markers, with timestamps rebased to
    the earliest span/marker and scaled to microseconds.  Tracks map
    to thread lanes via ``thread_name`` metadata, so Perfetto renders
    the campaign lane above one lane per task.
    """
    spans, markers = _split(source)
    times = [s.start for s in spans] + [m.t for m in markers]
    origin = min(times) if times else 0.0
    tids: dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tids:
            # Lane 0 is reserved for the campaign track so it sorts
            # first in the viewer regardless of event order.
            tids[track] = 0 if track == "campaign" \
                else len(tids) + (0 if "campaign" in tids else 1)
        return tids[track]

    tid("campaign")
    events: list[dict] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": 1,
            "tid": tid(span.track),
            "ts": (span.start - origin) * 1e6,
            "dur": max((end - span.start) * 1e6, 1.0),
            "args": {**span.args, "status": span.status},
        })
    for marker in markers:
        events.append({
            "ph": "i",
            "name": marker.name,
            "cat": "marker",
            "pid": 1,
            "tid": tid(marker.track),
            "ts": (marker.t - origin) * 1e6,
            "s": "t",
            "args": dict(marker.args),
        })
    meta: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": "repro campaign"},
    }]
    for track, lane in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": lane,
            "args": {"name": track},
        })
        meta.append({
            "ph": "M", "name": "thread_sort_index", "pid": 1,
            "tid": lane, "args": {"sort_index": lane},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def export_chrome_trace(source: SpanSource, path: PathLike) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = to_chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    return path
