"""The observability-instrumented worker entry point.

:func:`run_task_observed` is the drop-in replacement for
:func:`repro.runner.worker.run_task` that the runner selects when the
obs gate is on.  It produces, for every task it computes:

* a JSONL event log of the full simulation
  (``<obs-root>/events/<key[:2]>/<key>.jsonl``) streamed through an
  :class:`~repro.obs.events.ExportTracer` — bounded memory, batched
  writes, atomic finalization;
* a :class:`~repro.obs.manifest.RunManifest`
  (``<obs-root>/manifests/<key[:2]>/<key>.json``) carrying the task
  key, config hash, seed, versions, wall-clock and the run's engine
  counters;
* updates to the process-local :data:`~repro.obs.registry.REGISTRY`.

It returns exactly the :class:`~repro.analysis.points.SweepPoint` the
plain worker returns: attaching a tracer never touches an RNG stream or
a scheduling decision, so payloads are byte-identical with obs on or
off (pinned by ``tests/obs/test_golden_obs.py``).

Like the plain worker, the function is module-level and depends only on
the task contents plus the inherited environment, so it pickles across
a ``ProcessPoolExecutor`` — each worker process writes its own logs and
manifests and folds its own registry.
"""

from __future__ import annotations

import gc
from pathlib import Path

from repro.analysis.points import SweepPoint
from repro.runner.task import RunTask, task_key
from repro.runner import worker as _plain_worker

from . import manifest as manifest_module
from .events import EventLog, ExportTracer
from .gate import obs_root
from .registry import REGISTRY
from .timing import wall_clock

__all__ = ["run_task_observed", "event_log_path"]


def event_log_path(root: Path, key: str) -> Path:
    """Where the event log for task ``key`` lives (256-way shard)."""
    return root / "events" / key[:2] / f"{key}.jsonl"


def run_task_observed(task: RunTask) -> SweepPoint:
    """Execute one run with full observability side-band.

    The simulation itself is delegated to
    :func:`repro.runner.worker.run_task_result` (so test
    instrumentation of the plain path keeps working); the side-band —
    event log, manifest, registry — is assembled around it.
    """
    key = task_key(task)
    root = obs_root()
    t0 = wall_clock()
    log = EventLog(event_log_path(root, key),
                   meta={"key": key, "task": task.describe()})
    # Exporting allocates roughly one payload dict per simulation
    # event, which at CPython's default gen-0 threshold (700) triggers
    # proportionally more young collections than the same run obs-off.
    # The export buffer is bounded (one batch), so relaxing gen-0 for
    # the duration of the run trades a negligible amount of memory for
    # a measurable overhead cut (benchmarks/bench_obs_overhead.py).
    # A threshold of 0 means collection was deliberately switched off;
    # leave that alone.
    thresholds = gc.get_threshold()
    if thresholds[0]:
        gc.set_threshold(max(thresholds[0], 20_000), *thresholds[1:])
    try:
        with log:
            tracer = ExportTracer(log)
            result = _plain_worker.run_task_result(task, tracer=tracer)
    except Exception:
        REGISTRY.counter("runner.tasks.failed").inc()
        raise
    finally:
        gc.set_threshold(*thresholds)
    elapsed = wall_clock() - t0

    extras = result.extras
    metrics = {
        "events_processed": extras.get("events_processed", 0),
        "events_scheduled": extras.get("events_scheduled", 0),
        "jobs_started": extras.get("jobs_started", 0),
        "jobs_finished": extras.get("jobs_finished", 0),
        "placement_attempts": extras.get("placement_attempts", 0),
        "placement_failures": extras.get("placement_failures", 0),
        "queue_disables": extras.get("queue_disables", {}),
        "events_exported": log.events_written,
    }
    entry = manifest_module.for_task(
        task, key, cache_status="computed", wall_clock_s=elapsed,
        metrics=metrics, event_log=str(log.path),
    )
    manifest_module.write_manifest(
        entry, manifest_module.manifest_path(root, key))

    REGISTRY.counter("runner.tasks.computed").inc()
    REGISTRY.counter("sim.events.processed").inc(
        metrics["events_processed"])
    REGISTRY.counter("sim.events.scheduled").inc(
        metrics["events_scheduled"])
    REGISTRY.counter("sim.placement.attempts").inc(
        metrics["placement_attempts"])
    REGISTRY.counter("sim.placement.failures").inc(
        metrics["placement_failures"])
    REGISTRY.merge_counts(metrics["queue_disables"],
                          prefix="sim.queue.disables.")
    REGISTRY.histogram("runner.task.wall_clock_s").observe(elapsed)
    return SweepPoint.from_result(result)
