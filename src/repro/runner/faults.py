"""Deterministic fault injection for the execution backend.

The fault-tolerance layer is only trustworthy if its failure paths are
exercised *deterministically* — "kill a random worker and hope" proves
nothing.  This module injects failures at **chosen tasks** with
exactly-once semantics:

* a *fault plan* is a directory of armed fault files, one per planned
  failure, named ``<task-key>-<seq>.fault``;
* the plan directory is advertised to workers through the
  ``$REPRO_FAULTS_DIR`` environment variable (inherited by pool worker
  processes for free);
* before executing a task, the (wrapped) worker *claims* the
  lowest-sequence armed fault for its task key by atomically renaming
  the file to ``.fired`` — a claim succeeds exactly once, so each
  planned fault fires on exactly one attempt, and the n-th armed fault
  for a key fires on the task's n-th execution;
* a claimed fault then misbehaves on cue: ``crash`` hard-kills the
  worker process (``os._exit``), ``hang`` sleeps far past any sane
  per-task timeout, ``transient`` raises
  :class:`~repro.runner.errors.TransientWorkerError`.

:func:`poison_cache_entry` covers the fourth failure class — a
corrupted result-cache shard — by overwriting an entry with garbage
(the cache must recover by recomputing, surfacing one
:class:`~repro.runner.cache.CacheIntegrityWarning`).

The invariant the chaos suite (``tests/runner/chaos/``) pins: **any
fault schedule the runner survives yields results byte-identical to a
fault-free run**, because a retried task is the same pure function of
the same task contents.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only; a module-scope
    # import of repro.analysis would cycle back into this package.
    from repro.analysis.points import SweepPoint

from .errors import TransientWorkerError
from .task import RunTask, task_key

__all__ = [
    "Fault",
    "FaultInjectingWorker",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "faults_root",
    "plan_fault",
    "clear_plan",
    "armed_faults",
    "fired_faults",
    "maybe_fire",
    "poison_cache_entry",
]

#: Environment variable pointing at the fault-plan directory.  Unset
#: (the normal case) disables injection entirely — the worker wrapper
#: is never installed and production runs carry zero overhead.
FAULTS_ENV = "REPRO_FAULTS_DIR"

#: Supported worker-side failure classes.
FAULT_KINDS = ("crash", "hang", "transient")

#: Exit code of an injected worker crash (distinctive in core dumps
#: and process tables; anything non-zero works).
CRASH_EXIT_CODE = 41

#: Default injected hang duration.  Long enough that any reasonable
#: per-task timeout fires first; short enough that a worker leaked by a
#: failed termination cannot outlive a CI job.
DEFAULT_HANG_SECONDS = 300.0


@dataclass(frozen=True)
class Fault:
    """One planned failure: task key, failure class and payload."""

    key: str
    kind: str
    seq: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    message: str = "injected transient fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq!r}")


def faults_root() -> Optional[Path]:
    """The active fault-plan directory, or ``None`` (injection off)."""
    raw = os.environ.get(FAULTS_ENV, "").strip()
    return Path(raw) if raw else None


def _fault_path(root: Path, key: str, seq: int) -> Path:
    return root / f"{key}-{seq:03d}.fault"


def plan_fault(root: Union[str, Path], fault: Fault) -> Path:
    """Arm ``fault`` in the plan directory ``root``.

    Returns the armed fault file; renamed to ``.fired`` when claimed.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = _fault_path(root, fault.key, fault.seq)
    payload = {
        "key": fault.key,
        "kind": fault.kind,
        "seq": fault.seq,
        "hang_seconds": fault.hang_seconds,
        "message": fault.message,
    }
    tmp = path.with_suffix(".fault.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)
    return path


def clear_plan(root: Union[str, Path]) -> None:
    """Disarm every remaining fault under ``root``."""
    root = Path(root)
    if not root.is_dir():
        return
    for path in root.glob("*.fault"):
        path.unlink(missing_ok=True)


def armed_faults(root: Union[str, Path]) -> list[Path]:
    """Fault files not yet claimed, in firing order."""
    return sorted(Path(root).glob("*.fault"))


def fired_faults(root: Union[str, Path]) -> list[Path]:
    """Fault files already claimed by a worker, in firing order."""
    return sorted(Path(root).glob("*.fired"))


def _claim(path: Path) -> Optional[dict]:
    """Atomically claim one armed fault; ``None`` if already claimed.

    ``os.rename`` is atomic on POSIX, so even two racing processes (or
    a worker re-executed after a crash mid-claim) resolve to exactly
    one firing per armed fault.
    """
    fired = path.with_suffix(".fired")
    try:
        os.rename(path, fired)
    except FileNotFoundError:
        return None
    with open(fired, "r", encoding="utf-8") as fh:
        return json.load(fh)


def maybe_fire(key: str) -> None:
    """Fire the next armed fault for task ``key``, if any.

    Called by :class:`FaultInjectingWorker` before each execution
    attempt.  At most one fault fires per call, so ``n`` armed faults
    for a key misbehave on the task's first ``n`` attempts and attempt
    ``n + 1`` runs clean.
    """
    root = faults_root()
    if root is None:
        return
    for path in sorted(root.glob(f"{key}-*.fault")):
        payload = _claim(path)
        if payload is None:
            continue
        _execute_fault(payload)
        return


def _execute_fault(payload: dict) -> None:
    kind = payload.get("kind")
    if kind == "crash":
        # A hard kill: no exception propagation, no cleanup, no pickled
        # result — exactly what an OOM kill or segfault looks like to
        # the parent (BrokenProcessPool).
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(float(payload.get("hang_seconds",
                                     DEFAULT_HANG_SECONDS)))
        return
    if kind == "transient":
        raise TransientWorkerError(
            payload.get("message", "injected transient fault"))
    raise ValueError(f"unknown fault kind {kind!r} in plan entry")


class FaultInjectingWorker:
    """Picklable wrapper firing planned faults before the real worker.

    Installed by :func:`repro.runner.execute` only when
    ``$REPRO_FAULTS_DIR`` is set; holds a module-level worker function,
    so it pickles across a ``ProcessPoolExecutor`` like the plain
    worker does.
    """

    def __init__(self, inner: Callable[[RunTask], SweepPoint]) -> None:
        self.inner = inner

    def __call__(self, task: RunTask) -> SweepPoint:
        maybe_fire(task_key(task))
        return self.inner(task)

    def __repr__(self) -> str:
        return f"<FaultInjectingWorker inner={self.inner!r}>"


def poison_cache_entry(cache, key: str) -> Path:
    """Overwrite the cache entry for ``key`` with garbage bytes.

    Models a torn write or disk corruption on one shard; the cache
    contract is to warn once and recompute, never to crash or serve the
    poisoned payload.  Returns the poisoned path (which must exist).
    """
    path = cache.path_for(key)
    if not path.exists():
        raise FileNotFoundError(f"no cache entry to poison at {path}")
    path.write_bytes(b'{"schema": "repro.runner/1", "point": {CORRUPT')
    return path
