"""The worker-side entry point: run one task to one curve point.

This function is what the process pool pickles and ships to workers, so
it must be module-level and depend only on the task's own contents.
Determinism is inherited from the simulation itself: every stochastic
stream is derived from ``task.config.seed`` via
:class:`~repro.sim.rng.StreamFactory`, so a task produces bit-identical
results in any process, on any schedule, at any worker count.

:func:`run_task_result` is the full-fidelity variant: it returns the
complete :class:`~repro.core.system.OpenSystemResult` (including the
``extras`` engine counters) and accepts an optional tracer — the hook
the observability layer (:mod:`repro.obs.worker`) uses to stream an
event log without perturbing the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - imported lazily in run_task so
    # that importing repro.runner never initializes repro.analysis
    # (whose package __init__ imports this package back).
    from repro.analysis.points import SweepPoint

from repro.core.system import OpenSystemResult, run_open_system
from repro.sim.rng import StreamFactory
from repro.sim.trace import Tracer
from repro.workload.generator import JobFactory

from .task import RunTask

__all__ = ["run_task", "run_task_result"]


def run_task_result(task: RunTask,
                    tracer: Optional[Tracer] = None) -> OpenSystemResult:
    """Execute one open-system run, returning the full result.

    The arrival rate is recomputed from the offered gross utilization —
    a pure function of the workload distributions and configuration —
    so a worker needs nothing beyond the (picklable) task itself.
    Attaching a ``tracer`` never draws from an RNG stream, so traced
    and untraced runs are byte-identical.
    """
    config = task.config
    factory = JobFactory(
        task.size_distribution, task.service_distribution,
        config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    rate = factory.arrival_rate_for_gross_utilization(
        task.offered_gross, config.capacity
    )
    return run_open_system(config, task.size_distribution,
                           task.service_distribution, rate,
                           tracer=tracer)


def run_task(task: RunTask) -> SweepPoint:
    """Execute one open-system run and return its curve point.

    ``task.backend`` selects the engine: the scalar event loop
    (default) or the lockstep batch kernel at width 1.  Both produce
    identical statistics for the same task — the backend only changes
    *how* the point is computed — but cache keys keep them apart (see
    :func:`~repro.runner.task.task_key`).
    """
    if task.backend == "batch":
        from repro.sim.batch import run_batch_task

        return run_batch_task(task)
    if task.backend != "scalar":
        raise ValueError(f"unknown backend {task.backend!r}")
    from repro.analysis.points import SweepPoint

    return SweepPoint.from_result(run_task_result(task))
