"""The worker-side entry point: run one task to one curve point.

This function is what the process pool pickles and ships to workers, so
it must be module-level and depend only on the task's own contents.
Determinism is inherited from the simulation itself: every stochastic
stream is derived from ``task.config.seed`` via
:class:`~repro.sim.rng.StreamFactory`, so a task produces bit-identical
results in any process, on any schedule, at any worker count.
"""

from __future__ import annotations

from repro.analysis.points import SweepPoint
from repro.core.system import run_open_system
from repro.sim.rng import StreamFactory
from repro.workload.generator import JobFactory

from .task import RunTask

__all__ = ["run_task"]


def run_task(task: RunTask) -> SweepPoint:
    """Execute one open-system run and return its curve point.

    The arrival rate is recomputed from the offered gross utilization —
    a pure function of the workload distributions and configuration —
    so a worker needs nothing beyond the (picklable) task itself.
    """
    config = task.config
    factory = JobFactory(
        task.size_distribution, task.service_distribution,
        config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    rate = factory.arrival_rate_for_gross_utilization(
        task.offered_gross, config.capacity
    )
    result = run_open_system(config, task.size_distribution,
                             task.service_distribution, rate)
    return SweepPoint.from_result(result)
