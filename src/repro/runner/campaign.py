"""Sweep manifests: checkpoint/resume state for whole campaigns.

The result cache already checkpoints *tasks* — every completed run is
written (atomically) under its content-hash key the moment it finishes.
What the cache alone cannot answer is "what was I doing?": which tasks
a campaign (a sweep, a replicated sweep, a paired comparison) planned,
and how far it got.  A :class:`SweepManifest` records exactly that,
next to the cache under ``<cache-root>/sweeps/<campaign>.json``:

* the campaign key — a content hash of the campaign kind, label and the
  full planned task-key list, so the same command always maps to the
  same manifest and *any* change to the inputs starts a fresh one;
* the planned task keys and human-readable descriptions, in execution
  order;
* a status: ``"running"`` from first submission until the campaign's
  final artifact is assembled, then ``"complete"``.

Recovery needs no replay log: a campaign interrupted at any point
(SIGINT, OOM kill, machine reboot) is resumed by *re-running the same
command with the cache enabled* — completed tasks are cache hits,
unfinished ones re-execute, and the output is byte-identical to an
uninterrupted run because every task is a pure function of its
contents.  The manifest makes the resumption visible (``repro-sim
sweep --resume`` reports done/remaining counts before running) and
records campaign provenance for audits.

Like everything under :mod:`repro.obs`, manifests are side-band:
derived from the plan, never fed back into task keys or payloads.
Deleting ``sweeps/`` changes nothing about any result.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.obs import progress as _progress
from repro.obs.registry import REGISTRY

from .cache import ResultCache
from .task import RunTask, task_key

__all__ = [
    "SweepManifest",
    "SWEEP_MANIFEST_SCHEMA",
    "CAMPAIGN_LEDGER_SCHEMA",
    "campaign_key",
    "sweep_manifest_path",
    "campaign_ledger_path",
    "begin_campaign",
    "finish_campaign",
    "load_campaign",
    "campaign_progress",
    "record_ledger",
    "load_ledger",
    "match_campaigns",
]

#: Versioned shape tag of the sweep-manifest payload; bump on change.
SWEEP_MANIFEST_SCHEMA = "repro.runner/sweep-manifest/1"

#: Versioned shape tag of the campaign-ledger payload; bump on change.
CAMPAIGN_LEDGER_SCHEMA = "repro.runner/campaign-ledger/1"


@dataclass(frozen=True)
class SweepManifest:
    """The planned task set and status of one campaign."""

    campaign: str
    kind: str  # "sweep" | "replicated-sweep" | "paired-comparison"
    label: str
    task_keys: tuple[str, ...]
    descriptions: tuple[str, ...]
    status: str = "running"  # "running" | "complete"
    completed_points: Optional[int] = None
    schema: str = SWEEP_MANIFEST_SCHEMA

    def to_dict(self) -> dict:
        """JSON-ready dict form."""
        payload = asdict(self)
        payload["task_keys"] = list(self.task_keys)
        payload["descriptions"] = list(self.descriptions)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepManifest":
        """Rebuild a manifest, rejecting unknown schema tags."""
        if payload.get("schema") != SWEEP_MANIFEST_SCHEMA:
            raise ValueError(
                f"sweep manifest schema {payload.get('schema')!r} != "
                f"{SWEEP_MANIFEST_SCHEMA!r}")
        data = {k: payload[k] for k in cls.__dataclass_fields__
                if k in payload}
        data["task_keys"] = tuple(data.get("task_keys", ()))
        data["descriptions"] = tuple(data.get("descriptions", ()))
        return cls(**data)


def campaign_key(kind: str, label: str,
                 task_keys: Sequence[str]) -> str:
    """Content-hash identity of a campaign (64 hex chars).

    Hashing the planned task keys (themselves content hashes of the
    full configuration, seed, load and workload fingerprints) means any
    change to any input — grid, seeds, policy, workload — yields a new
    campaign, so resume can never mix state across campaigns.
    """
    payload = {
        "schema": SWEEP_MANIFEST_SCHEMA,
        "kind": kind,
        "label": label,
        "task_keys": list(task_keys),
    }
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sweep_manifest_path(cache_root: Path, campaign: str) -> Path:
    """Where the manifest for ``campaign`` lives under a cache root."""
    return Path(cache_root) / "sweeps" / f"{campaign}.json"


def _write(manifest: SweepManifest, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh, indent=1, sort_keys=True)
    os.replace(tmp, path)


def load_campaign(store: ResultCache,
                  campaign: str) -> Optional[SweepManifest]:
    """The stored manifest for ``campaign``, or ``None``.

    Malformed manifests (torn writes predate the atomic-replace era,
    schema bumps) read as absent: the campaign restarts cleanly and the
    manifest is rewritten — resume state is an optimization, never a
    correctness dependency.
    """
    path = sweep_manifest_path(store.root, campaign)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return SweepManifest.from_dict(json.load(fh))
    except (OSError, json.JSONDecodeError, ValueError, TypeError):
        return None


def campaign_progress(store: ResultCache,
                      manifest: SweepManifest) -> tuple[int, int]:
    """``(completed, planned)`` task counts judged by cache presence."""
    done = sum(1 for key in manifest.task_keys if store.contains(key))
    return done, len(manifest.task_keys)


def campaign_ledger_path(cache_root: Path, campaign: str) -> Path:
    """Where the submission ledger for ``campaign`` lives.

    It sits next to the manifest under ``sweeps/`` so deleting the
    directory wipes both kinds of side-band campaign state at once.
    """
    return Path(cache_root) / "sweeps" / f"{campaign}.ledger.json"


def record_ledger(store: ResultCache, campaign: str,
                  submission: dict) -> None:
    """Persist the submission that planned ``campaign`` (atomic write).

    The ledger is what turns ``--resume`` into *reconnection*: the
    manifest records which task keys a campaign planned, the ledger
    records the submission they were derived from, so a client (or a
    restarted server) can rebuild the exact task list from the
    campaign key alone and re-run it — completed tasks are cache hits,
    the remainder executes.  Like the manifest it is side-band: derived
    from the plan, never fed back into task keys or payloads.
    """
    path = campaign_ledger_path(store.root, campaign)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CAMPAIGN_LEDGER_SCHEMA,
        "campaign": campaign,
        "submission": submission,
    }
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)


def load_ledger(store: ResultCache, campaign: str) -> Optional[dict]:
    """The recorded submission for ``campaign``, or ``None``.

    Malformed or schema-mismatched ledgers read as absent, mirroring
    :func:`load_campaign`.
    """
    path = campaign_ledger_path(store.root, campaign)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("schema") != CAMPAIGN_LEDGER_SCHEMA \
            or not isinstance(payload.get("submission"), dict):
        return None
    return payload["submission"]


def match_campaigns(store: ResultCache, prefix: str) -> list[str]:
    """Ledgered campaign keys starting with ``prefix``, sorted.

    Lets clients reattach by a short unique key prefix the way git
    accepts abbreviated commit hashes.
    """
    sweeps = Path(store.root) / "sweeps"
    suffix = ".ledger.json"
    try:
        names = sorted(p.name for p in sweeps.iterdir())
    except OSError:
        return []
    return [name[:-len(suffix)] for name in names
            if name.endswith(suffix)
            and name[:-len(suffix)].startswith(prefix)]


def begin_campaign(kind: str, label: str, tasks: Sequence[RunTask],
                   store: Optional[ResultCache]) -> Optional[SweepManifest]:
    """Record the planned task set before the first submission.

    Returns ``None`` when no cache is active (a campaign without a
    cache has no state worth resuming).  When a manifest for the same
    campaign key already exists, this *is* a resumption: the
    ``runner.resume.campaigns`` counter is bumped and the
    ``runner.resume.completed`` / ``runner.resume.remaining`` gauges
    are set from the cache, so observability shows exactly how much
    work the restart skipped.
    """
    if store is None:
        return None
    keys = [task_key(t) for t in tasks]
    manifest = SweepManifest(
        campaign=campaign_key(kind, label, keys),
        kind=kind,
        label=label,
        task_keys=tuple(keys),
        descriptions=tuple(t.describe() for t in tasks),
    )
    prior = load_campaign(store, manifest.campaign)
    if prior is not None:
        done, total = campaign_progress(store, manifest)
        REGISTRY.counter("runner.resume.campaigns").inc()
        REGISTRY.gauge("runner.resume.completed").set(done)
        REGISTRY.gauge("runner.resume.remaining").set(total - done)
    _write(manifest, sweep_manifest_path(store.root, manifest.campaign))
    # Heartbeat for span recorders / dashboards: the campaign span
    # opens here and closes at finish_campaign.  Side-band only — no
    # subscriber means no work.
    _progress.notify("campaign-begin", manifest.campaign,
                     f"{kind} {label} ({len(keys)} tasks)")
    return manifest


def finish_campaign(manifest: Optional[SweepManifest],
                    store: Optional[ResultCache],
                    points: int) -> Optional[SweepManifest]:
    """Mark a campaign complete once its final artifact is assembled.

    ``points`` records how many curve points the campaign produced —
    for early-stopping sweeps this is legitimately smaller than the
    planned task count (the saturated tail is never simulated).
    """
    if manifest is None or store is None:
        return manifest
    done = replace(manifest, status="complete", completed_points=points)
    _write(done, sweep_manifest_path(store.root, done.campaign))
    _progress.notify("campaign-finish", done.campaign,
                     f"{done.kind} {done.label} ({points} points)")
    return done
