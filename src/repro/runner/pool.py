"""Deterministic, fault-tolerant fan-out of simulation tasks.

:func:`execute` is the single entry point: it takes an ordered list of
:class:`~repro.runner.task.RunTask` and returns their results *in input
order*, whatever the completion order — the input order is itself
derived from the deterministic task-key construction upstream, so a
parallel run assembles byte-identical output to a serial one.

Backends:

* ``workers == 1`` (the default) — run in-process, no pool, no pickling;
* ``workers > 1`` — a ``ProcessPoolExecutor``; each task is independent
  (its RNG streams derive from its own config seed), so scheduling
  cannot affect results.

Fault tolerance (``docs/robustness.md``) is layered on top without
touching a single result byte, because a retried task is the same pure
function of the same task contents:

* a worker exception consumes one of the task's
  :class:`~repro.runner.retry.RetryPolicy` attempts and the task is
  re-executed after a deterministic backoff;
* a task exceeding the per-task ``timeout`` is abandoned, its worker
  processes are terminated and replaced by a fresh pool, and the task
  retries (consuming an attempt);
* a hard worker crash (``BrokenProcessPool``) fails only the task that
  crashed; sibling tasks lost with the pool are *rescheduled* to a
  replacement pool without consuming their own attempts;
* every fresh result is written to the cache the moment it is
  collected, so an interrupted campaign (SIGINT, OOM kill, reboot)
  resumes from the last completed task (see
  :mod:`repro.runner.campaign`).

Under the default fail-fast policy (one attempt, no timeout) any
failure still surfaces as a typed
:class:`~repro.runner.errors.TaskFailedError` naming the failing task,
and the remaining futures are cancelled rather than left to hang.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only; a module-scope
    # import of repro.analysis would cycle back into this package.
    from repro.analysis.points import SweepPoint

from repro.obs import progress as _progress
from repro.obs.gate import obs_enabled
from repro.obs.registry import REGISTRY

from .cache import ResultCache
from .errors import TaskFailedError, TaskTimeoutError
from .faults import FaultInjectingWorker, faults_root
from .retry import RetryBudget, RetryPolicy, resolve_retry
from .task import RunTask, task_key
from .worker import run_task

__all__ = [
    "execute",
    "resolve_workers",
    "resolve_cache",
    "CacheSpec",
    "WORKERS_ENV",
    "CACHE_ENV",
]

#: Environment variable giving the default worker count (default 1).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable enabling the default cache: unset/"0"/"off"
#: disables, "1"/"on" uses ``.repro-cache``, anything else is a path.
CACHE_ENV = "REPRO_CACHE"

CacheSpec = Union[ResultCache, bool, None]

#: Injectable sleep for the backoff delays (tests patch this to keep
#: chaos suites fast; sleeping never influences results).
_sleep = time.sleep


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count (``None`` → ``$REPRO_WORKERS`` → 1)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return workers


def resolve_cache(cache: CacheSpec = None) -> Optional[ResultCache]:
    """The effective cache: explicit instance, bool switch, or env.

    ``None`` defers to ``$REPRO_CACHE``; ``True``/``False`` force the
    default cache directory on or off; a :class:`ResultCache` is used
    as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if cache is False:
        return None
    raw = os.environ.get(CACHE_ENV, "").strip()
    if not raw or raw.lower() in ("0", "off", "no", "false"):
        return None
    if raw.lower() in ("1", "on", "yes", "true"):
        return ResultCache()
    return ResultCache(raw)


def _note_cache_hits(tasks: Sequence[RunTask], keys: Sequence[str],
                     results: Sequence[Optional[SweepPoint]]) -> None:
    """Backfill a ``cache_status="hit"`` manifest for served tasks.

    A hit may predate observability (or come from another machine), so
    the obs root may hold no manifest for it; record the provenance we
    do know.  Existing "computed" manifests are left untouched — they
    carry wall-clock and metrics a hit record could not reproduce.
    """
    from repro.obs import manifest as _manifest
    from repro.obs.gate import obs_root

    root = obs_root()
    for task, key, point in zip(tasks, keys, results):
        if point is None:
            continue
        path = _manifest.manifest_path(root, key)
        if not path.exists():
            _manifest.write_manifest(
                _manifest.for_task(task, key, cache_status="hit"),
                path)


def _copy_manifest_to_cache(store: ResultCache, key: str) -> None:
    """Mirror the worker's manifest next to the stored cache entry."""
    import dataclasses

    from repro.obs import manifest as _manifest
    from repro.obs.gate import obs_root

    source = _manifest.manifest_path(obs_root(), key)
    if not source.exists():
        return
    entry = dataclasses.replace(_manifest.load_manifest(source),
                                cache_status="stored")
    _manifest.write_manifest(
        entry, _manifest.cache_manifest_path(store.path_for(key)))


def _note_attempts(key: str, attempts: int) -> None:
    """Record the final attempt count in the task's obs manifest.

    Best-effort side-band: a crashed worker may never have written a
    manifest for an earlier attempt, and a missing or stale manifest
    must not fail the run.
    """
    import dataclasses

    from repro.obs import manifest as _manifest
    from repro.obs.gate import obs_root

    path = _manifest.manifest_path(obs_root(), key)
    try:
        entry = _manifest.load_manifest(path)
    except (OSError, ValueError):
        return
    _manifest.write_manifest(
        dataclasses.replace(entry, attempts=attempts), path)


class _Execution:
    """Shared state of one :func:`execute` call's fresh-task phase."""

    def __init__(self, tasks: Sequence[RunTask], keys: Sequence[str],
                 results: "list[Optional[SweepPoint]]",
                 worker: Callable[[RunTask], SweepPoint],
                 policy: RetryPolicy, store: Optional[ResultCache],
                 obs_on: bool,
                 budget: Optional[RetryBudget] = None) -> None:
        self.tasks = tasks
        self.keys = keys
        self.results = results
        self.worker = worker
        self.policy = policy
        self.store = store
        self.obs_on = obs_on
        self.attempts: dict[int, int] = {}
        self.started: set[int] = set()
        self.budget = (budget if budget is not None
                       else RetryBudget(policy.retry_budget))

    def announce_start(self, i: int) -> None:
        """Emit the ``start`` heartbeat once per task, ever — a task
        rescheduled onto a replacement pool is still the same task."""
        if i not in self.started:
            self.started.add(i)
            _progress.notify("start", self.keys[i],
                             self.tasks[i].describe())

    def collect(self, i: int, point: SweepPoint) -> None:
        """Record, checkpoint and announce one finished task."""
        self.results[i] = point
        if self.store is not None:
            self.store.store(self.keys[i], point,
                             self.tasks[i].describe())
            if self.obs_on:
                _copy_manifest_to_cache(self.store, self.keys[i])
                REGISTRY.counter("runner.cache.stores").inc()
        made = self.attempts.get(i, 0) + 1
        if made > 1:
            REGISTRY.counter("runner.tasks.recovered").inc()
            if self.obs_on:
                _note_attempts(self.keys[i], made)
        _progress.notify("finish", self.keys[i],
                         self.tasks[i].describe())

    def register_failure(self, i: int, cause: str, *,
                         timeout: bool = False) -> None:
        """Consume an attempt for task ``i`` or give up with a typed
        error.

        Raises when the task is out of attempts or the shared retry
        budget is spent; otherwise sleeps the deterministic backoff so
        the caller can resubmit.
        """
        made = self.attempts.get(i, 0) + 1
        self.attempts[i] = made
        # Attempt-level diagnostic heartbeat carrying the cause; the
        # span recorder turns it into a failed attempt span.  The
        # progress display ignores non-task kinds.
        _progress.notify("attempt-failed", self.keys[i],
                         f"timeout: {cause}" if timeout else cause)
        error_cls = TaskTimeoutError if timeout else TaskFailedError
        if made >= self.policy.max_attempts:
            _progress.notify("fail", self.keys[i],
                             self.tasks[i].describe())
            raise error_cls(self.keys[i], self.tasks[i].describe(),
                            cause, attempts=made)
        if not self.budget.spend():
            _progress.notify("fail", self.keys[i],
                             self.tasks[i].describe())
            raise error_cls(
                self.keys[i], self.tasks[i].describe(),
                f"{cause} [retry budget exhausted]", attempts=made)
        REGISTRY.counter("runner.retries").inc()
        if timeout:
            REGISTRY.counter("runner.timeouts").inc()
        _progress.notify("retry", self.keys[i],
                         self.tasks[i].describe())
        _sleep(self.policy.backoff(self.keys[i], made))


def _run_serial(run: _Execution, pending: Sequence[int]) -> None:
    """In-process execution with retry (no preemption: timeouts and
    crash survival need the pool backend)."""
    for i in pending:
        run.announce_start(i)
        while True:
            try:
                point = run.worker(run.tasks[i])
            except Exception as exc:
                run.register_failure(i, repr(exc))
                continue
            run.collect(i, point)
            break


def _terminate_pool(pool: ProcessPoolExecutor) -> int:
    """Abandon ``pool``, killing its worker processes.

    Replacing workers (rather than waiting on them) is what makes hung
    tasks survivable: a worker stuck in an infinite loop or an injected
    ``hang`` fault would otherwise pin the pool forever.  Returns the
    number of processes terminated (the ``_processes`` peek degrades to
    0 gracefully if the executor internals ever change).
    """
    # Snapshot the workers *before* shutdown: the executor drops its
    # ``_processes`` reference inside ``shutdown()``, so peeking after
    # would find nothing and leave a hung worker sleeping — pinning the
    # executor's manager thread (and interpreter exit) until it wakes.
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    killed = 0
    for proc in processes.values():
        try:
            proc.terminate()
            killed += 1
        except Exception:
            pass
    return killed


def _harvest_round(run: _Execution,
                   inflight: "list[tuple[int, object]]") -> list[int]:
    """Salvage a broken round: keep done results, reschedule the rest.

    Tasks that finished before the pool died keep their results (and
    their checkpoint); ones that finished by *raising* consume a retry
    attempt like any other failure; tasks merely in flight are victims
    of a sibling failure and re-run on the replacement pool without
    consuming their own attempts.
    """
    carry: list[int] = []
    rescheduled = 0
    for i, future in inflight:
        exc = None
        if future.done() and not future.cancelled():
            exc = future.exception()
            if exc is None:
                run.collect(i, future.result())
                continue
        if exc is None or isinstance(exc, BrokenProcessPool):
            # Not finished, cancelled, or marked broken wholesale when
            # a sibling killed the pool: the task itself never failed.
            rescheduled += 1
        else:
            run.register_failure(i, repr(exc))
        carry.append(i)
    if rescheduled:
        REGISTRY.counter("runner.tasks.rescheduled").inc(rescheduled)
    return carry


def _retry_in_round(run: _Execution, pool: ProcessPoolExecutor,
                    inflight: "list[tuple[int, object]]", i: int,
                    cause: str) -> None:
    """Retry a transiently failed task on the (healthy) pool.

    An out-of-attempts/out-of-budget raise propagates to
    :func:`_run_pool`'s round guard, which terminates the pool rather
    than leaving its queue to drain.
    """
    run.register_failure(i, cause)
    inflight.append((i, pool.submit(run.worker, run.tasks[i])))


def _run_pool(run: _Execution, pending: Sequence[int],
              workers: int) -> None:
    """Process-pool execution in rounds, replacing broken pools.

    One round submits every queued task to a fresh pool and collects in
    submission order.  A transient worker exception is retried within
    the round (the pool is still healthy); a timeout or worker crash
    ends the round — already-finished siblings are harvested, the pool
    is terminated, and the failed task plus any lost siblings carry
    over to the next round.  The per-task ``timeout`` is measured while
    the runner waits on the task at collection, which upper-bounds its
    execution time once scheduled; waits absorbed by earlier tasks in
    the same round never count against later ones.
    """
    queue: list[int] = list(pending)
    first_round = True
    while queue:
        if not first_round:
            REGISTRY.counter("runner.workers.replaced").inc()
        first_round = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(queue))
        ) as pool:
            try:
                queue = _run_round(run, pool, queue)
            except BaseException:
                # Anything escaping a round — a task out of attempts,
                # a spent budget, KeyboardInterrupt — must never wait
                # on the pool: a hung worker would block the ``with``
                # exit's shutdown, and SIGINT on a campaign has to
                # exit promptly (restart+resume is the recovery path).
                _terminate_pool(pool)
                raise


def _run_round(run: _Execution, pool: ProcessPoolExecutor,
               queue: Sequence[int]) -> list[int]:
    """One pool round: submit all of ``queue``, collect in submission
    order, and return the tasks carrying over to the next round (empty
    when the round completed on a healthy pool).

    A round that ends early (timeout or crash) terminates its own pool
    before returning, so the caller's ``with`` exit never waits on a
    hung worker.
    """
    inflight: list[tuple[int, object]] = []
    for i in queue:
        run.announce_start(i)
        inflight.append((i, pool.submit(run.worker, run.tasks[i])))
    carry: list[int] = []
    while inflight:
        i, future = inflight.pop(0)
        try:
            point = future.result(timeout=run.policy.timeout)
        except FutureTimeoutError as exc:
            # On 3.11+ this class aliases builtins.TimeoutError,
            # so a TimeoutError raised *inside* a worker lands
            # here too; only a set policy timeout with a still-
            # running future is a collection timeout.
            if run.policy.timeout is None or future.done():
                _retry_in_round(run, pool, inflight, i, repr(exc))
                continue
            run.register_failure(
                i, f"exceeded the per-task timeout of "
                   f"{run.policy.timeout:g}s",
                timeout=True)
            carry.append(i)
            try:
                carry.extend(_harvest_round(run, inflight))
            finally:
                _terminate_pool(pool)
            break
        except BrokenProcessPool as exc:
            run.register_failure(i, f"worker process died: {exc!r}")
            carry.append(i)
            try:
                carry.extend(_harvest_round(run, inflight))
            finally:
                _terminate_pool(pool)
            break
        except Exception as exc:
            # An ordinary worker exception: the pool is healthy,
            # so the retry resubmits to it directly.
            _retry_in_round(run, pool, inflight, i, repr(exc))
            continue
        run.collect(i, point)
    return carry


def execute(tasks: Sequence[RunTask], *,
            workers: Optional[int] = None,
            cache: CacheSpec = None,
            worker: Callable[[RunTask], SweepPoint] = run_task,
            retry: Optional[RetryPolicy] = None,
            budget: Optional[RetryBudget] = None,
            ) -> list[SweepPoint]:
    """Run ``tasks``, returning results in input (task-key) order.

    Cached results are fetched first; only the remainder is executed.
    Every fresh result is written back to the cache *as it completes*,
    so an aborted sweep resumes where it stopped.  ``retry`` selects
    the fault-tolerance posture (default: fail fast, no timeout — or
    the ``$REPRO_RETRIES`` / ``$REPRO_TASK_TIMEOUT`` environment
    defaults; see :func:`~repro.runner.retry.resolve_retry`).

    ``budget`` lets a campaign driver share one
    :class:`~repro.runner.retry.RetryBudget` across several ``execute``
    calls so the retry bound spans the whole campaign; when ``None`` a
    fresh budget is derived from ``retry.retry_budget`` for this call.

    ``worker`` is injectable for tests (engine-invocation counters); it
    must stay the module-level default for multi-process runs to be
    picklable.
    """
    workers = resolve_workers(workers)
    store = resolve_cache(cache)
    policy = resolve_retry(retry)
    obs_on = obs_enabled()
    if obs_on and worker is run_task:
        # The observed worker is a drop-in replacement producing the
        # same points plus side-band artifacts.  Imported lazily (the
        # obs worker imports this package) and swapped only for the
        # default: injected test workers are never wrapped.
        from repro.obs.worker import run_task_observed

        worker = run_task_observed
    faults_on = faults_root() is not None
    if faults_on:
        worker = FaultInjectingWorker(worker)
    keys = [task_key(t) for t in tasks]
    results: list[Optional[SweepPoint]] = [None] * len(tasks)
    pending: list[int] = []
    for i, key in enumerate(keys):
        hit = store.load(key) if store is not None else None
        if hit is not None:
            results[i] = hit
            _progress.notify("hit", key, tasks[i].describe())
        else:
            pending.append(i)
    if obs_on:
        REGISTRY.counter("runner.tasks.total").inc(len(tasks))
        REGISTRY.counter("runner.cache.hits").inc(
            len(tasks) - len(pending))
        REGISTRY.counter("runner.cache.misses").inc(len(pending))
        if store is not None:
            _note_cache_hits(tasks, keys, results)

    if pending:
        run = _Execution(tasks, keys, results, worker, policy, store,
                         obs_on, budget)
        # The in-process path cannot preempt a hung task or survive a
        # crash, so a timeout (or an armed fault plan) routes execution
        # through the pool backend even at workers == 1 — a hang must
        # be killable and an injected crash must take down a worker,
        # never this process.
        serial = ((workers == 1 or len(pending) == 1)
                  and policy.timeout is None
                  and not faults_on)
        if serial:
            _run_serial(run, pending)
        else:
            _run_pool(run, pending, workers)

    out: list[SweepPoint] = []
    for i, point in enumerate(results):
        if point is None:
            raise TaskFailedError(keys[i], tasks[i].describe(),
                                  "worker returned no result")
        out.append(point)
    return out
