"""Deterministic fan-out of simulation tasks over worker processes.

:func:`execute` is the single entry point: it takes an ordered list of
:class:`~repro.runner.task.RunTask` and returns their results *in input
order*, whatever the completion order — the input order is itself
derived from the deterministic task-key construction upstream, so a
parallel run assembles byte-identical output to a serial one.

Backends:

* ``workers == 1`` (the default) — run in-process, no pool, no pickling;
* ``workers > 1`` — a ``ProcessPoolExecutor``; each task is independent
  (its RNG streams derive from its own config seed), so scheduling
  cannot affect results.

A raised exception inside a worker — or the death of the worker process
itself — is converted into a typed
:class:`~repro.runner.errors.TaskFailedError` naming the failing task,
and the remaining futures are cancelled rather than left to hang.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, Union

from repro.analysis.points import SweepPoint
from repro.obs import progress as _progress
from repro.obs.gate import obs_enabled
from repro.obs.registry import REGISTRY

from .cache import ResultCache
from .errors import TaskFailedError
from .task import RunTask, task_key
from .worker import run_task

__all__ = [
    "execute",
    "resolve_workers",
    "resolve_cache",
    "CacheSpec",
    "WORKERS_ENV",
    "CACHE_ENV",
]

#: Environment variable giving the default worker count (default 1).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable enabling the default cache: unset/"0"/"off"
#: disables, "1"/"on" uses ``.repro-cache``, anything else is a path.
CACHE_ENV = "REPRO_CACHE"

CacheSpec = Union[ResultCache, bool, None]


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count (``None`` → ``$REPRO_WORKERS`` → 1)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return workers


def resolve_cache(cache: CacheSpec = None) -> Optional[ResultCache]:
    """The effective cache: explicit instance, bool switch, or env.

    ``None`` defers to ``$REPRO_CACHE``; ``True``/``False`` force the
    default cache directory on or off; a :class:`ResultCache` is used
    as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if cache is False:
        return None
    raw = os.environ.get(CACHE_ENV, "").strip()
    if not raw or raw.lower() in ("0", "off", "no", "false"):
        return None
    if raw.lower() in ("1", "on", "yes", "true"):
        return ResultCache()
    return ResultCache(raw)


def _run_serial(task: RunTask, key: str,
                worker: Callable[[RunTask], SweepPoint]) -> SweepPoint:
    try:
        return worker(task)
    except Exception as exc:
        raise TaskFailedError(key, task.describe(), repr(exc)) from exc


def _note_cache_hits(tasks: Sequence[RunTask], keys: Sequence[str],
                     results: Sequence[Optional[SweepPoint]]) -> None:
    """Backfill a ``cache_status="hit"`` manifest for served tasks.

    A hit may predate observability (or come from another machine), so
    the obs root may hold no manifest for it; record the provenance we
    do know.  Existing "computed" manifests are left untouched — they
    carry wall-clock and metrics a hit record could not reproduce.
    """
    from repro.obs import manifest as _manifest
    from repro.obs.gate import obs_root

    root = obs_root()
    for task, key, point in zip(tasks, keys, results):
        if point is None:
            continue
        path = _manifest.manifest_path(root, key)
        if not path.exists():
            _manifest.write_manifest(
                _manifest.for_task(task, key, cache_status="hit"),
                path)


def _copy_manifest_to_cache(store: ResultCache, key: str) -> None:
    """Mirror the worker's manifest next to the stored cache entry."""
    import dataclasses

    from repro.obs import manifest as _manifest
    from repro.obs.gate import obs_root

    source = _manifest.manifest_path(obs_root(), key)
    if not source.exists():
        return
    entry = dataclasses.replace(_manifest.load_manifest(source),
                                cache_status="stored")
    _manifest.write_manifest(
        entry, _manifest.cache_manifest_path(store.path_for(key)))


def execute(tasks: Sequence[RunTask], *,
            workers: Optional[int] = None,
            cache: CacheSpec = None,
            worker: Callable[[RunTask], SweepPoint] = run_task,
            ) -> list[SweepPoint]:
    """Run ``tasks``, returning results in input (task-key) order.

    Cached results are fetched first; only the remainder is executed.
    Every fresh result is written back to the cache before returning,
    so an aborted sweep resumes where it stopped.

    ``worker`` is injectable for tests (engine-invocation counters); it
    must stay the module-level default for multi-process runs to be
    picklable.
    """
    workers = resolve_workers(workers)
    store = resolve_cache(cache)
    obs_on = obs_enabled()
    if obs_on and worker is run_task:
        # The observed worker is a drop-in replacement producing the
        # same points plus side-band artifacts.  Imported lazily (the
        # obs worker imports this package) and swapped only for the
        # default: injected test workers are never wrapped.
        from repro.obs.worker import run_task_observed

        worker = run_task_observed
    keys = [task_key(t) for t in tasks]
    results: list[Optional[SweepPoint]] = [None] * len(tasks)
    pending: list[int] = []
    for i, key in enumerate(keys):
        hit = store.load(key) if store is not None else None
        if hit is not None:
            results[i] = hit
            _progress.notify("hit", key, tasks[i].describe())
        else:
            pending.append(i)
    if obs_on:
        REGISTRY.counter("runner.tasks.total").inc(len(tasks))
        REGISTRY.counter("runner.cache.hits").inc(
            len(tasks) - len(pending))
        REGISTRY.counter("runner.cache.misses").inc(len(pending))
        if store is not None:
            _note_cache_hits(tasks, keys, results)

    if pending:
        if workers == 1 or len(pending) == 1:
            for i in pending:
                _progress.notify("start", keys[i], tasks[i].describe())
                try:
                    results[i] = _run_serial(tasks[i], keys[i], worker)
                except TaskFailedError:
                    _progress.notify("fail", keys[i],
                                     tasks[i].describe())
                    raise
                _progress.notify("finish", keys[i], tasks[i].describe())
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = []
                for i in pending:
                    _progress.notify("start", keys[i],
                                     tasks[i].describe())
                    futures.append((i, pool.submit(worker, tasks[i])))
                # Collect in submission order: output is a pure function
                # of the task list, never of completion order.
                try:
                    for i, future in futures:
                        try:
                            results[i] = future.result()
                        except BrokenProcessPool as exc:
                            _progress.notify("fail", keys[i],
                                             tasks[i].describe())
                            raise TaskFailedError(
                                keys[i], tasks[i].describe(),
                                f"worker process died: {exc!r}",
                            ) from exc
                        except Exception as exc:
                            _progress.notify("fail", keys[i],
                                             tasks[i].describe())
                            raise TaskFailedError(
                                keys[i], tasks[i].describe(), repr(exc)
                            ) from exc
                        _progress.notify("finish", keys[i],
                                         tasks[i].describe())
                except TaskFailedError:
                    # Don't drain the queue after a failure: cancel
                    # everything not yet running and surface the error.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        if store is not None:
            for i in pending:
                point = results[i]
                if point is not None:
                    store.store(keys[i], point, tasks[i].describe())
                    if obs_on:
                        _copy_manifest_to_cache(store, keys[i])
                        REGISTRY.counter("runner.cache.stores").inc()

    out: list[SweepPoint] = []
    for i, point in enumerate(results):
        if point is None:
            raise TaskFailedError(keys[i], tasks[i].describe(),
                                  "worker returned no result")
        out.append(point)
    return out
