"""Typed errors raised by the parallel execution backend.

A failing worker must never hang the pool or surface as an anonymous
``BrokenProcessPool``: every failure is converted into a
:class:`TaskFailedError` that names the task (policy, seed, offered
utilization and content-hash key) so an aborted sweep is diagnosable
from the exception alone.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RunnerError", "TaskFailedError"]


class RunnerError(Exception):
    """Base class for execution-backend errors."""


class TaskFailedError(RunnerError):
    """One simulation task raised (or its worker process died).

    Attributes
    ----------
    key:
        The content-hash task key (see :func:`repro.runner.task_key`).
    description:
        Human-readable task identity (policy, seed, utilization).
    cause_repr:
        ``repr`` of the underlying exception, captured as a string so
        the error survives pickling across process boundaries.
    """

    def __init__(self, key: str, description: str,
                 cause_repr: Optional[str] = None) -> None:
        self.key = key
        self.description = description
        self.cause_repr = cause_repr
        detail = f": {cause_repr}" if cause_repr else ""
        super().__init__(
            f"simulation task {description} (key {key[:12]}…) failed{detail}"
        )
