"""Typed errors raised by the parallel execution backend.

A failing worker must never hang the pool or surface as an anonymous
``BrokenProcessPool``: every failure is converted into a
:class:`TaskFailedError` that names the task (policy, seed, offered
utilization and content-hash key) so an aborted sweep is diagnosable
from the exception alone.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "RunnerError",
    "TaskFailedError",
    "TaskTimeoutError",
    "TransientWorkerError",
]


class RunnerError(Exception):
    """Base class for execution-backend errors."""


class TransientWorkerError(RunnerError):
    """A retryable failure raised inside a worker.

    The retry layer treats *every* worker exception as potentially
    transient (it cannot tell a cosmic ray from a bug; the retry budget
    bounds the damage either way), so this class adds no special
    handling — it exists as the canonical exception for the
    fault-injection harness (:mod:`repro.runner.faults`) and for
    embedders whose workers want to signal "try again" explicitly.
    """


class TaskFailedError(RunnerError):
    """One simulation task failed for good (out of attempts).

    Attributes
    ----------
    key:
        The content-hash task key (see :func:`repro.runner.task_key`).
    description:
        Human-readable task identity (policy, seed, utilization).
    cause_repr:
        ``repr`` of the underlying exception, captured as a string so
        the error survives pickling across process boundaries.
    attempts:
        How many executions were made before giving up (1 under the
        default fail-fast policy).
    """

    def __init__(self, key: str, description: str,
                 cause_repr: Optional[str] = None, *,
                 attempts: int = 1) -> None:
        self.key = key
        self.description = description
        self.cause_repr = cause_repr
        self.attempts = attempts
        detail = f": {cause_repr}" if cause_repr else ""
        tries = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"simulation task {description} (key {key[:12]}…) "
            f"failed{tries}{detail}"
        )


class TaskTimeoutError(TaskFailedError):
    """A task exceeded its per-task wall-clock timeout on every attempt.

    Raised only once the retry policy is exhausted; individual timeouts
    within the attempt budget are survived by terminating and replacing
    the stuck worker process.
    """

