"""Fused sweep execution: a whole campaign grid through one lane kernel.

:func:`execute_fused` is the batch-backend counterpart of
:func:`~repro.runner.pool.execute`: it takes heterogeneous
:class:`~repro.runner.task.RunTask`\\ s — different loads, seeds,
component limits, run lengths — and runs every task sharing a *kernel
shape* (policy, placement, capacities, workload distributions) as
lanes of one :class:`~repro.sim.batch.BatchLaneKernel`, retiring
finished lanes early and refilling their slots from the pending list.
A 42-point policy grid becomes one kernel call instead of 42 scalar
runs.

The runner contracts are preserved exactly:

* **per-task cache granularity** — each task is looked up under its
  own :func:`~repro.runner.task.task_key` before running, and every
  fresh :class:`~repro.analysis.points.SweepPoint` is checkpointed to
  the :class:`~repro.runner.cache.ResultCache` under that same key the
  moment its lane retires (not when the whole wave ends), so cache
  hits, ``--resume`` and crash recovery behave as with the scalar
  pool;
* **per-task progress** — the ``hit``/``start``/``finish`` heartbeats
  fire per task, so the progress display and span recorder see the
  same campaign shape;
* **bit-identical results** — lanes never interact, so a task's point
  is independent of which tasks share its kernel call, of slot
  assignment, and of refill order; the differential-oracle and
  golden-corpus suites pin this against the scalar engine.

``follow_up`` supports dependent task chains (a replication sweep
schedules seed *s*'s next grid point only if its current point did not
saturate): it is invoked once per completed task — cache hits included
— and any tasks it returns join the pending list.  This reproduces
exactly the task set a serial driver would run, while unrelated lanes
keep the kernel busy.

Fault injection and observability both need per-task worker
invocations (crash plans and event logs are keyed per task), so
:func:`fused_eligible` gates fusion off when either is armed; callers
fall back to the ordinary pool, task at a time, with identical
results.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.obs import progress as _progress
from repro.obs.gate import obs_enabled

from .faults import faults_root
from .pool import CacheSpec, resolve_cache
from .task import RunTask, _fingerprint, task_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.analysis.points import SweepPoint
    from repro.sim.batch import BatchLaneKernel

__all__ = ["DEFAULT_FUSED_WIDTH", "execute_fused", "fused_eligible"]

#: Default kernel width (concurrent lanes).  Wide enough to amortize
#: the lockstep select/statistics columns over a full policy grid;
#: beyond ~32 lanes the per-event Python fast path dominates and extra
#: width only adds memory.
DEFAULT_FUSED_WIDTH = 32

#: ``follow_up(task, key, point)`` → more tasks to enqueue (or None).
FollowUp = Callable[[RunTask, str, "SweepPoint"],
                    Optional[Iterable[RunTask]]]

#: ``on_result(task, key, point)`` — streaming observer; see
#: :func:`execute_fused`.
OnResult = Callable[[RunTask, str, "SweepPoint"], None]

#: One kernel shape: policy, placement, capacities, distribution
#: fingerprints.  Tasks in one group share a kernel; groups run in
#: first-appearance order.
_GroupKey = tuple[str, str, tuple[int, ...], str, str]


def fused_eligible() -> bool:
    """Whether tasks may fuse into in-process multi-lane kernel calls.

    Fault injection intercepts *task* execution (crash/hang plans are
    keyed per task) and observability captures per-run event logs;
    both contracts need one worker invocation per task, so their
    presence routes batch tasks through the ordinary pool instead.
    Results are identical either way — a lane's statistics do not
    depend on which other lanes share its kernel call.
    """
    return faults_root() is None and not obs_enabled()


class _Group:
    """Pending/in-flight state of one kernel shape."""

    __slots__ = ("template", "kernel", "pending", "loaded", "free")

    def __init__(self, template: RunTask) -> None:
        self.template = template
        self.kernel: Optional[BatchLaneKernel] = None
        #: FIFO of (task, key) not yet loaded into a slot.
        self.pending: deque[tuple[RunTask, str]] = deque()
        #: slot -> (task, key) currently running.
        self.loaded: dict[int, tuple[RunTask, str]] = {}
        #: Free slot indices (ascending preference).
        self.free: list[int] = []


def _group_key(task: RunTask) -> _GroupKey:
    c = task.config
    return (c.policy.upper(), c.placement,
            tuple(int(cap) for cap in c.capacities),
            _fingerprint(task.size_distribution),
            _fingerprint(task.service_distribution))


def execute_fused(tasks: Sequence[RunTask], *,
                  cache: CacheSpec = None,
                  width: int = DEFAULT_FUSED_WIDTH,
                  follow_up: Optional[FollowUp] = None,
                  on_result: Optional[OnResult] = None
                  ) -> "dict[str, SweepPoint]":
    """Run ``tasks`` as fused lane-kernel calls; returns points by key.

    Tasks are grouped by kernel shape; each group runs as one
    :class:`~repro.sim.batch.BatchLaneKernel` of at most ``width``
    lanes, loading pending tasks into slots as earlier lanes retire.
    Cached tasks are served without occupying a lane.  The returned
    mapping covers every task — the inputs plus everything
    ``follow_up`` added — keyed by :func:`~repro.runner.task.task_key`.

    ``on_result`` is invoked once per task the moment its point is
    known — at enqueue for cache hits, at lane retirement (after the
    cache checkpoint) for fresh runs — so a driver can stream points
    out mid-wave instead of waiting for the whole call to return.
    The sweep service uses this to resolve per-task futures while the
    kernel is still running; like ``follow_up`` it observes results,
    it can never alter them.

    The caller is responsible for gating on :func:`fused_eligible`
    (and for only passing tasks the batch kernel supports —
    an unsupported model raises
    :class:`~repro.sim.batch.BatchBackendError`).
    """
    from repro.sim.batch import BatchLaneKernel

    store = resolve_cache(cache)
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width!r}")
    results: dict[str, SweepPoint] = {}
    groups: dict[_GroupKey, _Group] = {}
    #: Completed (task, key, point) awaiting their follow_up call —
    #: processed iteratively so cache-hit chains cannot recurse.
    settled: deque[tuple[RunTask, str, SweepPoint]] = deque()
    seen: set[str] = set()

    def enqueue(task: RunTask) -> None:
        key = task_key(task)
        if key in seen:
            raise ValueError(
                f"duplicate task in fused execution: {task.describe()}"
            )
        seen.add(key)
        hit = store.load(key) if store is not None else None
        if hit is not None:
            results[key] = hit
            _progress.notify("hit", key, task.describe())
            if on_result is not None:
                on_result(task, key, hit)
            settled.append((task, key, hit))
            return
        gkey = _group_key(task)
        group = groups.get(gkey)
        if group is None:
            group = _Group(task)
            groups[gkey] = group
        group.pending.append((task, key))

    def run_follow_ups() -> None:
        while settled:
            task, key, point = settled.popleft()
            if follow_up is None:
                continue
            for extra in follow_up(task, key, point) or ():
                enqueue(extra)

    for task in tasks:
        enqueue(task)
    run_follow_ups()

    def drive(group: _Group) -> None:
        """Run one group until its pending list and lanes are empty."""
        kernel = group.kernel
        if kernel is None:
            template = group.pending[0][0]
            kernel = BatchLaneKernel(
                template.config, template.size_distribution,
                template.service_distribution,
                min(width, len(group.pending)))
            group.kernel = kernel
            group.free = list(range(kernel.n))
        while group.pending or group.loaded:
            while group.free and group.pending:
                slot = group.free.pop()
                task, key = group.pending.popleft()
                kernel.load(slot, task.config, task.offered_gross)
                group.loaded[slot] = (task, key)
                _progress.notify("start", key, task.describe())
            kernel.step()
            retired = kernel.drain_retired()
            for slot, point in retired:
                task, key = group.loaded.pop(slot)
                group.free.append(slot)
                results[key] = point
                if store is not None:
                    store.store(key, point, task.describe())
                _progress.notify("finish", key, task.describe())
                if on_result is not None:
                    on_result(task, key, point)
                settled.append((task, key, point))
            if retired:
                # Follow-ups may enqueue to this group (refilling the
                # freed slots next iteration) or to other groups.
                run_follow_ups()

    # Groups run in first-appearance order; follow-ups may reopen an
    # earlier group, so loop until every pending list is drained.
    progress = True
    while progress:
        progress = False
        for group in list(groups.values()):
            if group.pending or group.loaded:
                drive(group)
                progress = True
    return results
