"""``repro.runner`` — deterministic, fault-tolerant parallel execution.

The sweep and replication harnesses fan their independent runs (grid
points × master seeds × configurations) out over worker processes
through this package:

* :class:`RunTask` / :func:`task_key` — one run, keyed by a stable
  content hash of (configuration incl. master seed, offered
  utilization, workload fingerprints);
* :func:`execute` — serial or process-pool execution with results
  collected in task order, so output never depends on scheduling;
* :func:`execute_fused` (:mod:`repro.runner.fused`) — the batch-backend
  counterpart: heterogeneous tasks fused into lockstep lane-kernel
  calls, retiring and refilling lanes, with the same per-task cache
  checkpoints and progress heartbeats;
* :class:`RetryPolicy` — per-task retries with deterministic
  exponential backoff, a campaign-wide retry budget
  (:class:`RetryBudget`) and per-task wall-clock timeouts with worker
  replacement;
* :class:`ResultCache` — an on-disk JSON cache under ``.repro-cache/``
  keyed by the same hashes, letting re-runs and aborted sweeps skip
  completed work;
* :class:`SweepManifest` (:mod:`repro.runner.campaign`) — the planned
  task set of a whole campaign, making interrupted sweeps resumable
  (``repro-sim sweep --resume``) with byte-identical output;
* :mod:`repro.runner.faults` — the deterministic fault-injection
  harness (worker crashes, hangs, transient exceptions, poisoned cache
  shards) that proves all of the above in ``tests/runner/chaos/``;
* :class:`TaskFailedError` — the typed error a task out of attempts
  surfaces as, naming the failing task.

See ``docs/parallel.md`` for the determinism argument and cache
layout, and ``docs/robustness.md`` for the failure model and the
retry/timeout/resume semantics.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_TAG,
    CacheIntegrityWarning,
    ResultCache,
)
from .campaign import (
    CAMPAIGN_LEDGER_SCHEMA,
    SWEEP_MANIFEST_SCHEMA,
    SweepManifest,
    begin_campaign,
    campaign_key,
    campaign_ledger_path,
    campaign_progress,
    finish_campaign,
    load_campaign,
    load_ledger,
    match_campaigns,
    record_ledger,
    sweep_manifest_path,
)
from .errors import (
    RunnerError,
    TaskFailedError,
    TaskTimeoutError,
    TransientWorkerError,
)
from .fused import (
    DEFAULT_FUSED_WIDTH,
    execute_fused,
    fused_eligible,
)
from .pool import (
    CACHE_ENV,
    WORKERS_ENV,
    CacheSpec,
    execute,
    resolve_cache,
    resolve_workers,
)
from .retry import (
    BACKOFF_ENV,
    BUDGET_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    RetryBudget,
    RetryPolicy,
    backoff_delay,
    resolve_retry,
)
from .task import KEY_VERSION, RunTask, task_key, task_keys
from .worker import run_task

__all__ = [
    "RunTask", "task_key", "task_keys", "KEY_VERSION",
    "execute", "run_task", "resolve_workers", "resolve_cache",
    "execute_fused", "fused_eligible", "DEFAULT_FUSED_WIDTH",
    "CacheSpec", "WORKERS_ENV", "CACHE_ENV",
    "RetryPolicy", "RetryBudget", "resolve_retry", "backoff_delay",
    "RETRIES_ENV", "TIMEOUT_ENV", "BACKOFF_ENV", "BUDGET_ENV",
    "ResultCache", "CacheIntegrityWarning", "SCHEMA_TAG",
    "DEFAULT_CACHE_DIR",
    "SweepManifest", "SWEEP_MANIFEST_SCHEMA", "campaign_key",
    "sweep_manifest_path", "begin_campaign", "finish_campaign",
    "load_campaign", "campaign_progress",
    "CAMPAIGN_LEDGER_SCHEMA", "campaign_ledger_path", "record_ledger",
    "load_ledger", "match_campaigns",
    "RunnerError", "TaskFailedError", "TaskTimeoutError",
    "TransientWorkerError",
]
