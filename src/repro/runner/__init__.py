"""``repro.runner`` — deterministic parallel execution of simulation runs.

The sweep and replication harnesses fan their independent runs (grid
points × master seeds × configurations) out over worker processes
through this package:

* :class:`RunTask` / :func:`task_key` — one run, keyed by a stable
  content hash of (configuration incl. master seed, offered
  utilization, workload fingerprints);
* :func:`execute` — serial or process-pool execution with results
  collected in task order, so output never depends on scheduling;
* :class:`ResultCache` — an on-disk JSON cache under ``.repro-cache/``
  keyed by the same hashes, letting re-runs and aborted sweeps skip
  completed work;
* :class:`TaskFailedError` — the typed error a crashing worker surfaces
  as, naming the failing task.

See ``docs/parallel.md`` for the full determinism argument and cache
layout.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    SCHEMA_TAG,
    CacheIntegrityWarning,
    ResultCache,
)
from .errors import RunnerError, TaskFailedError
from .pool import (
    CACHE_ENV,
    WORKERS_ENV,
    CacheSpec,
    execute,
    resolve_cache,
    resolve_workers,
)
from .task import KEY_VERSION, RunTask, task_key
from .worker import run_task

__all__ = [
    "RunTask", "task_key", "KEY_VERSION",
    "execute", "run_task", "resolve_workers", "resolve_cache",
    "CacheSpec", "WORKERS_ENV", "CACHE_ENV",
    "ResultCache", "CacheIntegrityWarning", "SCHEMA_TAG",
    "DEFAULT_CACHE_DIR",
    "RunnerError", "TaskFailedError",
]
