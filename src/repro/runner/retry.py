"""Retry discipline: deterministic backoff, budgets and timeouts.

A :class:`RetryPolicy` tells the execution backend how to respond when
a task attempt fails — raise immediately (the default, one attempt), or
re-execute up to ``max_attempts`` times with exponential backoff.  The
policy is *pure configuration*: nothing in it (and nothing in the retry
machinery) can influence a simulation result, because a retried task is
the same pure function of the same task contents.  Fault tolerance is
therefore a wall-clock concern only, and any run the layer survives is
byte-identical to a fault-free run (``tests/runner/chaos/`` pins this).

Backoff delays are a deterministic function of ``(task key, attempt)``:
exponential growth with a jitter factor derived from a SHA-256 of the
pair, never from an RNG or the clock.  Two processes retrying the same
task compute the same schedule, and property tests can assert the
schedule without mocking entropy.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "resolve_retry",
    "backoff_delay",
    "RETRIES_ENV",
    "TIMEOUT_ENV",
    "BACKOFF_ENV",
    "BUDGET_ENV",
]

#: Environment variable giving the default retries-per-task (default 0).
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable giving the default per-task timeout in seconds
#: (unset/empty/"0" means no timeout).
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Environment variable giving the default backoff base in seconds.
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Environment variable giving the default total retry budget per
#: :func:`~repro.runner.execute` call (unset means unlimited).
BUDGET_ENV = "REPRO_RETRY_BUDGET"


def backoff_delay(key: str, attempt: int, *, base: float = 0.05,
                  cap: float = 2.0) -> float:
    """The deterministic backoff before retry ``attempt`` of ``key``.

    ``attempt`` counts retries from 1 (the delay before the second
    execution).  The delay is ``base * 2**(attempt-1)`` scaled by a
    jitter factor in ``[0.5, 1.5)`` derived from a SHA-256 of
    ``(key, attempt)`` — a pure function of its arguments, so schedules
    are reproducible across processes and machines — and clamped to
    ``cap`` seconds.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt!r}")
    if base <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{key}:{attempt}".encode("ascii")).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0**64
    return min(base * 2.0 ** (attempt - 1) * jitter, cap)


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner responds to failing, crashing or hanging tasks.

    Parameters
    ----------
    max_attempts:
        Executions allowed per task (1 = fail fast, the default).
        Transient exceptions, worker crashes and timeouts all consume
        attempts; tasks merely *lost* when a sibling kills the pool are
        rescheduled for free.
    backoff_base / backoff_cap:
        Parameters of :func:`backoff_delay`; a ``backoff_base`` of 0
        disables sleeping between attempts.
    retry_budget:
        Total retries allowed across one :func:`~repro.runner.execute`
        call (``None`` = bounded only by ``max_attempts`` per task).  A
        budget keeps a systematically failing campaign from retrying
        every task to exhaustion.  Campaign drivers (``sweep``,
        ``replicate_sweep``) that split their grid over several
        ``execute`` calls share one :class:`RetryBudget` across all of
        them, so the bound is campaign-wide, not per chunk.
    timeout:
        Per-task wall-clock limit in seconds (``None`` = none).  A task
        exceeding it is abandoned, its worker process is terminated and
        replaced, and the task is retried (consuming an attempt).
        Requires the process-pool backend; the in-process serial path
        cannot preempt a running task, so ``workers=1`` with a timeout
        still routes through a single-worker pool.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_budget: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget!r}")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(
                f"timeout must be > 0, got {self.timeout!r}")

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` of task ``key``."""
        return backoff_delay(key, attempt, base=self.backoff_base,
                             cap=self.backoff_cap)


class RetryBudget:
    """A mutable retry allowance shared across ``execute`` calls.

    :func:`~repro.runner.execute` creates one from
    ``RetryPolicy.retry_budget`` when the caller supplies none, so a
    standalone call keeps its documented call-wide bound.  Campaign
    drivers that issue *many* ``execute`` calls (``sweep`` runs the
    grid in worker-sized chunks, ``replicate_sweep`` in waves) share a
    single instance across all of them — the budget bounds the whole
    campaign, which is what keeps a systematically failing campaign
    from retrying every task to exhaustion.

    ``remaining is None`` means unlimited (bounded only by
    ``max_attempts`` per task).
    """

    __slots__ = ("remaining",)

    def __init__(self, remaining: Optional[int] = None) -> None:
        if remaining is not None and remaining < 0:
            raise ValueError(
                f"retry budget must be >= 0, got {remaining!r}")
        self.remaining = remaining

    def spend(self) -> bool:
        """Consume one retry; ``False`` when the budget is dry."""
        if self.remaining is None:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def resolve_retry(retry: Optional[RetryPolicy] = None) -> RetryPolicy:
    """The effective retry policy (``None`` → environment → fail-fast).

    ``$REPRO_RETRIES`` gives the retries *per task* (``max_attempts``
    minus one), ``$REPRO_TASK_TIMEOUT`` the per-task timeout in seconds
    (0 disables), ``$REPRO_RETRY_BACKOFF`` the backoff base and
    ``$REPRO_RETRY_BUDGET`` the total retry budget.
    """
    if retry is not None:
        return retry
    retries = _env_int(RETRIES_ENV) or 0
    if retries < 0:
        raise ValueError(f"{RETRIES_ENV} must be >= 0, got {retries!r}")
    timeout = _env_float(TIMEOUT_ENV)
    if timeout is not None and timeout <= 0.0:
        timeout = None
    base = _env_float(BACKOFF_ENV)
    budget = _env_int(BUDGET_ENV)
    kwargs = dict(max_attempts=retries + 1, retry_budget=budget,
                  timeout=timeout)
    if base is not None:
        kwargs["backoff_base"] = base
    return RetryPolicy(**kwargs)
