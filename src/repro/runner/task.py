"""Task identity: one simulation run, keyed by a stable content hash.

A :class:`RunTask` is the unit the pool fans out: *one* open-system run
of one :class:`~repro.core.system.SimulationConfig` (which carries the
master seed) at one offered gross utilization.  Its :func:`task_key` is
a SHA-256 over a canonical JSON encoding of everything the result
depends on — the full configuration, the offered load and content
fingerprints of both workload distributions — so

* the same experiment always maps to the same key (cache hits survive
  process restarts and re-imports);
* *any* change to the inputs changes the key (no stale cache reads);
* results can be collected in task-key order, independent of worker
  completion order.

Distribution fingerprints hash the pickled object with a pinned pickle
protocol: the workload distributions are plain frozen tables, so equal
distributions always pickle to equal bytes.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict, dataclass

from repro.core.system import SimulationConfig
from repro.sim.distributions import Distribution

__all__ = ["RunTask", "task_key", "task_keys", "KEY_VERSION"]

#: Bump when the key derivation (not the cached payload) changes shape.
KEY_VERSION = 1

#: Pinned pickle protocol so fingerprints are stable across interpreter
#: sessions on the same Python major line.
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class RunTask:
    """One open-system simulation run to execute (or fetch from cache)."""

    config: SimulationConfig
    size_distribution: Distribution
    service_distribution: Distribution
    offered_gross: float
    backend: str = "scalar"

    def describe(self) -> str:
        """Short human-readable identity (for errors and logs)."""
        c = self.config
        suffix = "" if self.backend == "scalar" else f" [{self.backend}]"
        return (f"{c.policy} L={c.component_limit} seed={c.seed} "
                f"rho={self.offered_gross:g}{suffix}")


def _fingerprint(distribution: Distribution) -> str:
    """Content hash of a distribution (stable across processes)."""
    blob = pickle.dumps(distribution, protocol=_PICKLE_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def task_key(task: RunTask) -> str:
    """The stable content-hash key of ``task`` (64 hex chars)."""
    payload = {
        "key_version": KEY_VERSION,
        "config": asdict(task.config),
        "offered_gross": task.offered_gross,
        "size_distribution": _fingerprint(task.size_distribution),
        "service_distribution": _fingerprint(task.service_distribution),
    }
    # The scalar backend predates the field: omitting it keeps every
    # existing cache entry addressable, while any non-default backend
    # gets a disjoint key space (batch results are never conflated with
    # scalar ones, even though the statistics are contractually equal).
    if task.backend != "scalar":
        payload["backend"] = task.backend
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_keys(tasks: "list[RunTask] | tuple[RunTask, ...]") -> list[str]:
    """The keys of ``tasks``, in input order (campaign planning)."""
    return [task_key(task) for task in tasks]
