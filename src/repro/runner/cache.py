"""On-disk result cache keyed by task content hashes.

Layout: one JSON file per task under ``.repro-cache/<key[:2]>/<key>.json``
(the two-character shard keeps directories small on big sweeps)::

    {
      "schema": "repro.runner/1",
      "key": "<64 hex chars>",
      "task": "<human-readable description>",
      "point": { ...SweepPoint fields... }
    }

Integrity rules:

* writes are atomic (temp file + ``os.replace``), so an aborted run can
  never leave a truncated entry behind;
* a corrupted, truncated or schema-mismatched entry is *never* fatal —
  it falls through to recompute, surfacing one
  :class:`CacheIntegrityWarning` per run (per cache instance);
* the ``schema`` tag versions the payload shape: bumping
  :data:`SCHEMA_TAG` invalidates every existing entry at once.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - importing repro.analysis here at
    # module scope would cycle: its package __init__ pulls in the sweep
    # harness, which imports this package.  The point (de)serializers
    # are imported lazily at call time instead.
    from repro.analysis.points import SweepPoint

__all__ = [
    "ResultCache",
    "CacheIntegrityWarning",
    "SCHEMA_TAG",
    "DEFAULT_CACHE_DIR",
]

#: Versioned payload-shape tag; bump on incompatible changes.
SCHEMA_TAG = "repro.runner/1"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class CacheIntegrityWarning(UserWarning):
    """A cache entry was unreadable and will be recomputed."""


class ResultCache:
    """JSON file cache of completed simulation runs.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first store).
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._warned = False

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no validation).

        A cheap existence probe for progress accounting (campaign
        resume reports); a present-but-corrupt entry still counts here
        and is handled — warn once, recompute — on the actual
        :meth:`load`.
        """
        return self.path_for(key).exists()

    def load(self, key: str) -> Optional[SweepPoint]:
        """The cached point for ``key``, or ``None`` to recompute.

        Any malformed entry (bad JSON, missing fields, wrong schema
        tag) counts as a miss; the first one per run raises a
        :class:`CacheIntegrityWarning` so silent corruption is visible
        without spamming a warning per entry.
        """
        from repro.analysis.points import point_from_dict

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._warn_once(path, f"unreadable entry ({exc})")
            self.misses += 1
            return None
        try:
            if payload["schema"] != SCHEMA_TAG:
                self._warn_once(
                    path,
                    f"schema tag {payload['schema']!r} != {SCHEMA_TAG!r}",
                )
                self.misses += 1
                return None
            point = point_from_dict(payload["point"])
        except (KeyError, TypeError) as exc:
            self._warn_once(path, f"malformed payload ({exc!r})")
            self.misses += 1
            return None
        self.hits += 1
        return point

    def store(self, key: str, point: SweepPoint,
              description: str = "") -> None:
        """Persist ``point`` under ``key`` (atomic write)."""
        from repro.analysis.points import point_to_dict

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_TAG,
            "key": key,
            "task": description,
            "point": point_to_dict(point),
        }
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1

    def stats(self) -> dict[str, int]:
        """Lifetime counters of this cache instance (JSON-ready).

        The sweep service reports these through its ``status`` op, so a
        client can verify dedup claims ("a repeat submission performed
        zero engine calls") without filesystem access to the cache.
        """
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def _warn_once(self, path: Path, reason: str) -> None:
        if self._warned:
            return
        self._warned = True
        warnings.warn(
            f"result cache: {reason} at {path}; recomputing (further "
            f"integrity issues this run are silent)",
            CacheIntegrityWarning,
            stacklevel=3,
        )

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root} hits={self.hits} "
                f"misses={self.misses} stores={self.stores}>")
