"""Project-wide symbol table for the whole-program simlint passes.

The per-file rules (SIM001–SIM006) see one AST at a time; the
cross-module rules (SIM007–SIM012) need to answer questions like
"what does the name ``execute`` refer to *here*?" or "which dataclass
does this annotation resolve to?".  A :class:`Project` indexes every
module handed to one lint run:

* module-level **definitions** — functions, classes (with their
  methods), and assignments, each addressable by a dotted *qualified
  name* (``repro.core.placement._fill_scratch``,
  ``repro.sim.engine.Simulator.step``);
* **imports** — per module, a map from local alias to the qualified
  name it binds (``from .pool import execute as run`` →
  ``run -> repro.runner.pool.execute``), with relative imports resolved
  against the importing module's package;
* **re-export chains** — :meth:`Project.resolve` chases
  ``repro.runner.execute`` through ``repro/runner/__init__.py`` to the
  defining module, so call sites see one canonical name no matter which
  façade they imported from.

Resolution is *best effort and conservative*: a name the table cannot
pin down resolves to ``None`` and downstream rules stay silent rather
than guess.  Files outside a recognisable package root (test fixtures
in a temp directory) are indexed under their file stem so the machinery
— and the rules built on it — work identically in fixture tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .context import FileContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
]

#: Cap on import-chain hops when canonicalising re-exports; real chains
#: are 1–2 deep, the cap only guards against pathological cycles.
_MAX_CHASE = 8


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    #: Owning class name for methods, ``None`` for top-level functions.
    cls: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition with its directly-defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    def is_dataclass(self) -> bool:
        """Whether the class carries a ``@dataclass`` decorator."""
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = _terminal(target)
            if name == "dataclass":
                return True
        return False

    def dataclass_fields(self) -> Tuple[str, ...]:
        """Field names of a dataclass body (annotated assignments),
        excluding ``ClassVar``s — in declaration order."""
        fields: list[str] = []
        for stmt in self.node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(stmt.target.id)
        return tuple(fields)


@dataclass
class ModuleInfo:
    """Everything the table knows about one module."""

    name: str
    ctx: FileContext
    #: local alias -> qualified target name.
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level assignment: name -> its value expression (the last
    #: binding in source order wins, matching runtime semantics).
    assigns: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.ctx.path

    def defines(self, name: str) -> bool:
        """Whether ``name`` is bound at module level (def/class/assign)."""
        return (name in self.functions or name in self.classes
                or name in self.assigns)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _module_package(module: str, *, is_package: bool) -> str:
    """The package a module's relative imports resolve against."""
    if is_package:
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


def _resolve_relative(package: str, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute module named by ``from <level dots><target> import ...``."""
    if level == 0:
        return target
    parts = package.split(".") if package else []
    # level=1 is the current package; each extra dot climbs one parent.
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if target:
        base.extend(target.split("."))
    return ".".join(base) if base else None


def _index_module(ctx: FileContext) -> ModuleInfo:
    """Build the :class:`ModuleInfo` for one parsed file."""
    is_package = ctx.path.endswith("__init__.py")
    name = ctx.module
    if name is None:
        # Fixture files outside a package root: index by file stem so
        # single-file projects (tests) still resolve local names.
        stem = ctx.path.rsplit("/", 1)[-1]
        name = stem[:-3] if stem.endswith(".py") else stem
    info = ModuleInfo(name=name, ctx=ctx)
    package = _module_package(name, is_package=is_package)

    def index_assign_target(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            info.assigns[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                index_assign_target(element, value)

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = FunctionInfo(
                    qualname=f"{name}.{node.name}", module=name,
                    name=node.name, node=node)
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(qualname=f"{name}.{node.name}",
                                module=name, name=node.name, node=node)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        cls.methods[stmt.name] = FunctionInfo(
                            qualname=f"{cls.qualname}.{stmt.name}",
                            module=name, name=stmt.name, node=stmt,
                            cls=node.name)
                info.classes[node.name] = cls
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    index_assign_target(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                index_assign_target(node.target, node.value)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(package, node.level, node.module)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue  # cannot track what a star drags in
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}"
            elif isinstance(node, ast.If):
                # TYPE_CHECKING / version guards: both arms bind names.
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(ctx.tree.body)
    return info


class Project:
    """The indexed modules of one lint run, with name resolution."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: Every function and method in the project, by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        for info in modules.values():
            self.functions.update(
                (f.qualname, f) for f in info.functions.values())
            for cls in info.classes.values():
                self.functions.update(
                    (m.qualname, m) for m in cls.methods.values())

    # -- lookup ------------------------------------------------------------

    def module_of(self, path: str) -> Optional[ModuleInfo]:
        """The module indexed from ``path`` (exact string match)."""
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def class_named(self, qualname: str) -> Optional[ClassInfo]:
        """The class at ``qualname`` (``module.Class``), if indexed."""
        module, _, leaf = qualname.rpartition(".")
        info = self.modules.get(module)
        if info is not None and leaf in info.classes:
            return info.classes[leaf]
        return None

    def module_value(self, qualname: str) -> Optional[ast.expr]:
        """The value expression of a module-level assignment."""
        module, _, leaf = qualname.rpartition(".")
        info = self.modules.get(module)
        if info is not None:
            return info.assigns.get(leaf)
        return None

    # -- resolution --------------------------------------------------------

    def _canonical(self, qualified: str) -> str:
        """Chase re-export chains to the defining module."""
        for _ in range(_MAX_CHASE):
            module, _, leaf = qualified.rpartition(".")
            if not module:
                return qualified
            info = self.modules.get(module)
            if info is None:
                return qualified
            if info.defines(leaf):
                return qualified
            target = info.imports.get(leaf)
            if target is None or target == qualified:
                return qualified
            qualified = target
        return qualified

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """The qualified name ``dotted`` denotes inside ``module``.

        Handles local definitions, import aliases (including modules
        imported whole: ``pool.execute`` with ``import pool``), and
        re-export chains.  Returns ``None`` when the head of the chain
        is not a module-level binding the table knows about — e.g. a
        function-local variable.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if info.defines(head) or head in info.functions:
            base = f"{module}.{head}"
        elif head in info.imports:
            base = info.imports[head]
        else:
            return None
        qualified = f"{base}.{rest}" if rest else base
        return self._canonical(qualified)


def build_project(contexts: Iterable[FileContext]) -> Project:
    """Index ``contexts`` into a :class:`Project` (sorted by module)."""
    modules: Dict[str, ModuleInfo] = {}
    for ctx in sorted(contexts, key=lambda c: c.path):
        info = _index_module(ctx)
        modules[info.name] = info
    return Project(modules)
