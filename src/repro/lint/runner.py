"""File discovery and rule execution for the simlint pass."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from .config import rule_applies
from .context import build_context
from .rules import RULES
from .types import LintError, Violation

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths"]

#: Directories never worth descending into.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".mypy_cache", ".ruff_cache",
                        ".pytest_cache", "build", "dist"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        """No violations and no parse errors."""
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        """0 clean, 1 violations, 2 parse/read errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def counts_by_rule(self) -> dict[str, int]:
        """Violation tally per rule id (sorted by id)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        else:
            yield path


def lint_file(
    path: Path,
    *,
    select: Optional[Sequence[str]] = None,
    scope: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[Violation]:
    """Run the (selected) rules over one file, honouring scope and
    suppression comments.  Raises on unreadable/unparsable input."""
    ctx = build_context(path)
    wanted = set(select) if select else set(RULES)
    violations: list[Violation] = []
    for rule_id in sorted(wanted):
        registered = RULES.get(rule_id)
        if registered is None:
            raise KeyError(f"unknown rule id {rule_id!r}")
        if not rule_applies(rule_id, ctx.module, scope):
            continue
        for violation in registered.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                violations.append(violation)
    return sorted(violations)


def lint_paths(
    paths: Iterable["Path | str"],
    *,
    select: Optional[Sequence[str]] = None,
    scope: Optional[Mapping[str, Sequence[str]]] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; never raises on bad files."""
    result = LintResult()
    for path in iter_python_files(Path(p) for p in paths):
        try:
            result.violations.extend(lint_file(path, select=select, scope=scope))
        except SyntaxError as exc:
            result.errors.append(
                LintError(str(path), f"syntax error: {exc.msg} (line {exc.lineno})")
            )
        except OSError as exc:
            result.errors.append(LintError(str(path), f"cannot read: {exc}"))
        result.files_checked += 1
    result.violations.sort()
    result.errors.sort()
    return result
