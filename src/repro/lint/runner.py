"""File discovery and rule execution for the simlint pass.

Execution happens in two layers sharing one parse per file:

1. **Per-file rules** (SIM001–SIM006) run over each
   :class:`~repro.lint.context.FileContext` independently.
2. **Project rules** (SIM007–SIM012) run once over the
   :class:`~repro.lint.symbols.Project` built from *all* successfully
   parsed files, so cross-module facts (imports, call reachability)
   are visible.

Scope filtering and ``# simlint: disable=`` suppression comments apply
uniformly to both layers, keyed by the module/line each violation
lands in.  An optional :class:`~repro.lint.baseline.Baseline` filters
accepted legacy findings out at the end; the number it absorbed is
reported separately (``LintResult.baselined``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from . import project_rules as _project_rules  # noqa: F401  (registers SIM007+)
from .baseline import Baseline
from .config import rule_applies
from .context import FileContext, build_context
from .graph import CallGraph, build_call_graph
from .rules import RULES
from .symbols import Project, build_project
from .types import LintError, Violation

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths"]

#: Directories never worth descending into.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".mypy_cache", ".ruff_cache",
                        ".pytest_cache", "build", "dist"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0
    #: Findings absorbed by the baseline file (not in ``violations``).
    baselined: int = 0

    @property
    def clean(self) -> bool:
        """No violations and no parse errors."""
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        """0 clean, 1 violations, 2 parse/read errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def counts_by_rule(self) -> dict[str, int]:
        """Violation tally per rule id (sorted by id)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        else:
            yield path


def _selected(select: Optional[Sequence[str]]) -> list[str]:
    wanted = set(select) if select else set(RULES)
    for rule_id in wanted:
        if rule_id not in RULES:
            raise KeyError(f"unknown rule id {rule_id!r}")
    return sorted(wanted)


def _run_file_rules(
    ctx: FileContext,
    selected: Sequence[str],
    scope: Optional[Mapping[str, Sequence[str]]],
) -> list[Violation]:
    violations: list[Violation] = []
    for rule_id in selected:
        registered = RULES[rule_id]
        if registered.project:
            continue
        if not rule_applies(rule_id, ctx.module, scope):
            continue
        for violation in registered.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                violations.append(violation)
    return violations


def _run_project_rules(
    contexts: Sequence[FileContext],
    selected: Sequence[str],
    scope: Optional[Mapping[str, Sequence[str]]],
) -> list[Violation]:
    project_ids = [r for r in selected if RULES[r].project]
    if not project_ids or not contexts:
        return []
    project: Project = build_project(contexts)
    graph: CallGraph = build_call_graph(project)
    by_path: Dict[str, FileContext] = {ctx.path: ctx for ctx in contexts}
    violations: list[Violation] = []
    for rule_id in project_ids:
        for violation in RULES[rule_id].check(project, graph):
            ctx = by_path.get(violation.path)
            module = ctx.module if ctx is not None else None
            if not rule_applies(rule_id, module, scope):
                continue
            if ctx is not None and ctx.is_suppressed(
                    violation.rule, violation.line):
                continue
            violations.append(violation)
    return violations


def lint_file(
    path: Path,
    *,
    select: Optional[Sequence[str]] = None,
    scope: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[Violation]:
    """Run the (selected) rules over one file, honouring scope and
    suppression comments.  Project rules see a single-file project, so
    cross-module resolution degrades to local resolution.  Raises on
    unreadable/unparsable input."""
    ctx = build_context(path)
    selected = _selected(select)
    violations = _run_file_rules(ctx, selected, scope)
    violations.extend(_run_project_rules([ctx], selected, scope))
    return sorted(violations)


def lint_paths(
    paths: Iterable["Path | str"],
    *,
    select: Optional[Sequence[str]] = None,
    scope: Optional[Mapping[str, Sequence[str]]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; never raises on bad files.

    All parseable files are indexed into one project for the
    cross-module rules; files that fail to parse are reported as
    errors and excluded from the project (their absence can only make
    reachability smaller, never wrong).
    """
    result = LintResult()
    contexts: List[FileContext] = []
    selected = _selected(select)
    for path in iter_python_files(Path(p) for p in paths):
        try:
            ctx = build_context(path)
        except SyntaxError as exc:
            result.errors.append(
                LintError(str(path), f"syntax error: {exc.msg} (line {exc.lineno})")
            )
        except OSError as exc:
            result.errors.append(LintError(str(path), f"cannot read: {exc}"))
        else:
            contexts.append(ctx)
            result.violations.extend(_run_file_rules(ctx, selected, scope))
        result.files_checked += 1
    result.violations.extend(_run_project_rules(contexts, selected, scope))
    if baseline is not None:
        result.violations, result.baselined = baseline.filter(
            result.violations)
    result.violations.sort()
    result.errors.sort()
    return result
