"""Cross-module simlint rules SIM007–SIM012.

These rules run once per lint invocation over the whole
:class:`~repro.lint.symbols.Project` (symbol table + call graph),
rather than once per file.  Each check is ``(Project, CallGraph) ->
Iterator[Violation]``; the runner applies scope filtering and
suppression comments exactly as for the per-file rules, keyed by the
module each violation lands in.

All six rules share the conservative-resolution contract of
:mod:`repro.lint.graph`: a name or call target the symbol table cannot
prove stays unreported.  Findings are therefore high-confidence; the
committed baseline (:mod:`repro.lint.baseline`) exists for adopting
stricter rules on legacy trees, not for housing known false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .graph import CallGraph, entry_points
from .rules import rule
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, Project
from .types import Fix, Violation

__all__: list[str] = []

#: Container methods that mutate the receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort",
        "reverse", "appendleft", "popleft", "extendleft",
    }
)

#: Hash constructors that mark a function as a key/fingerprint builder.
_HASH_NAMES = frozenset(
    {"sha256", "sha1", "sha224", "sha384", "sha512", "md5",
     "blake2b", "blake2s"}
)

#: The registry module-level name SIM011 looks for.
_SCHEMA_REGISTRY_NAME = "EVENT_SCHEMAS"

#: Row keys every emit_row row must carry besides the payload.
_ROW_PROTOCOL_KEYS = frozenset({"t", "kind"})


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _path_of(project: Project, module: str) -> str:
    info = project.modules.get(module)
    return info.path if info is not None else module


def _violation(project: Project, module: str, rule_id: str,
               node: ast.AST, message: str,
               fix: Optional[Fix] = None) -> Violation:
    return Violation(
        path=_path_of(project, module),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
        fix=fix,
    )


def _short(qualname: str) -> str:
    """Trailing two components of a qualified name (for messages)."""
    return ".".join(qualname.split(".")[-2:])


# ---------------------------------------------------------------------------
# SIM007 — non-picklable callables shipped to the process pool
# ---------------------------------------------------------------------------


def _is_execute_target(qualified: str) -> bool:
    """Whether ``qualified`` names the runner's pool entry point."""
    parts = qualified.split(".")
    return (parts[-1] == "execute"
            and len(parts) >= 2
            and parts[-2] in ("pool", "runner"))


def _worker_arg(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "worker":
            return kw.value
    return None


def _unpicklable_reason(project: Project, module: ModuleInfo,
                        value: ast.expr,
                        local_funcs: Dict[str, str]) -> Optional[str]:
    """Why ``value`` cannot be pickled for a worker process, if so."""
    if isinstance(value, ast.Lambda):
        return "a lambda (pickled by qualified name, which lambdas lack)"
    if isinstance(value, ast.Name):
        kind = local_funcs.get(value.id)
        if kind is not None:
            return (f"{kind} {value.id!r} defined inside the enclosing "
                    f"function (closures cannot be pickled)")
        resolved = project.resolve(module.name, value.id)
        if resolved is not None:
            target = project.module_value(resolved)
            if isinstance(target, ast.Lambda):
                return (f"{value.id!r}, bound to a module-level lambda "
                        f"in {resolved.rpartition('.')[0]!r} (lambdas "
                        "are never picklable)")
        return None
    if isinstance(value, ast.Call):
        callee = _dotted(value.func)
        if callee is not None and callee.split(".")[-1] == "partial" \
                and value.args:
            inner = _unpicklable_reason(project, module, value.args[0],
                                        local_funcs)
            if inner is not None:
                return f"functools.partial over {inner}"
    return None


@rule("SIM007", "no non-picklable/closure callables shipped to "
                "runner.pool execute paths", project=True)
def check_pool_callables(project: Project, graph: CallGraph
                         ) -> Iterator[Violation]:
    """A ``worker=`` callable handed to :func:`repro.runner.pool.execute`
    crosses a process boundary by pickle.  Lambdas, nested functions and
    partials over either fail at fan-out time — but only when the run
    actually selects ``workers > 1``, so the bug ships silently and
    detonates on the first parallel campaign.
    """
    for module_name in sorted(project.modules):
        module = project.modules[module_name]

        def visit(body: list[ast.stmt],
                  local_funcs: Dict[str, str],
                  *, nested: bool) -> Iterator[Violation]:
            for node in body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    if nested:
                        local_funcs[node.name] = "nested function"
                    inner = dict(local_funcs)
                    yield from visit(node.body, inner, nested=True)
                    continue
                if nested and isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and \
                                isinstance(node.value, ast.Lambda):
                            local_funcs[target.id] = "lambda"
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = _dotted(call.func)
                    if callee is None:
                        continue
                    resolved = project.resolve(module.name, callee)
                    if resolved is None or \
                            not _is_execute_target(resolved):
                        continue
                    worker = _worker_arg(call)
                    if worker is None:
                        continue
                    reason = _unpicklable_reason(
                        project, module, worker, local_funcs)
                    if reason is not None:
                        yield _violation(
                            project, module.name, "SIM007", worker,
                            f"worker= passed to {_short(resolved)} is "
                            f"{reason}; use a module-level function",
                        )

        yield from visit(module.ctx.tree.body, {}, nested=False)


# ---------------------------------------------------------------------------
# SIM008 — module-state mutation reachable from worker-executed code
# ---------------------------------------------------------------------------


def _module_state_aliases(project: Project, func: FunctionInfo
                          ) -> Dict[str, str]:
    """Local names that alias module-level state inside ``func``.

    Only the direct pattern ``local = MODULE_LEVEL_NAME`` is tracked;
    anything fancier stays invisible (conservative by design).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        resolved = project.resolve(func.module, node.value.id)
        if resolved is None or project.module_value(resolved) is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = resolved
    return aliases


def _mutated_module_state(project: Project, func: FunctionInfo
                          ) -> Iterator[Tuple[ast.AST, str]]:
    """(node, qualified state name) for each module-state mutation."""
    aliases = _module_state_aliases(project, func)
    declared_global: Set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def state_target(name: str) -> Optional[str]:
        if name in aliases:
            return aliases[name]
        resolved = project.resolve(func.module, name)
        if resolved is not None and \
                project.module_value(resolved) is not None:
            return resolved
        return None

    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id in declared_global:
                    resolved = project.resolve(func.module, target.id)
                    yield node, resolved or f"{func.module}.{target.id}"
                elif isinstance(target, (ast.Subscript, ast.Attribute)) \
                        and isinstance(target.value, ast.Name):
                    state = state_target(target.value.id)
                    if state is not None:
                        yield node, state
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS and \
                isinstance(node.func.value, ast.Name):
            state = state_target(node.func.value.id)
            if state is not None:
                yield node, state


@rule("SIM008", "no module-state mutation reachable from "
                "worker-executed code", project=True)
def check_worker_module_state(project: Project, graph: CallGraph
                              ) -> Iterator[Violation]:
    """Workers are forked/spawned processes: module-level state mutated
    on a worker-executed path diverges silently between processes (and
    between serial and parallel runs of the *same* seed).  Flags
    ``global`` writes and in-place container mutation of module-level
    names — including one-hop local aliases — in any function reachable
    from the worker/hot-path entry points.
    """
    parents = graph.reachable_from(entry_points(project))
    for qualname in sorted(parents):
        func = project.functions.get(qualname)
        if func is None:
            continue
        chain = graph.chain(parents, qualname)
        via = " -> ".join(_short(q) for q in chain)
        for node, state in _mutated_module_state(project, func):
            yield _violation(
                project, func.module, "SIM008", node,
                f"{_short(qualname)!r} mutates module-level state "
                f"{state!r} on a worker-executed path ({via}); "
                "cross-process divergence risk",
            )


# ---------------------------------------------------------------------------
# SIM009 — unordered-set iteration feeding deterministic outputs
# ---------------------------------------------------------------------------


def _local_set_names(func_node: ast.AST) -> Set[str]:
    """Names bound to set-valued expressions inside one function."""
    names: Set[str] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign) and \
                _is_setish(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.split("[")[0].split(".")[-1] in (
                    "set", "Set", "frozenset", "FrozenSet",
                    "AbstractSet", "MutableSet"):
                names.add(node.target.id)
    return names


def _is_setish(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        terminal = _dotted(node.func)
        if terminal is not None and \
                terminal.split(".")[-1] in ("set", "frozenset"):
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_setish(node.left, set_names)
                or _is_setish(node.right, set_names))
    return False


def _sorted_fix(module: ModuleInfo, node: ast.expr) -> Optional[Fix]:
    """Wrap a single-line iteration expression in ``sorted(...)``."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line != node.lineno or end_col is None:
        return None
    segment = ast.get_source_segment(module.ctx.source, node)
    if segment is None:
        return None
    return Fix(kind="replace", line=node.lineno, col=node.col_offset,
               end_col=end_col, replacement=f"sorted({segment})")


@rule("SIM009", "no iteration over unordered sets on result-affecting "
                "paths", project=True)
def check_set_iteration_order(project: Project, graph: CallGraph
                              ) -> Iterator[Violation]:
    """``set``/``frozenset`` iteration order depends on insertion
    history and on the per-process string hash seed, so a loop over a
    set that feeds event scheduling, task keys or serialized results is
    deterministic only by accident.  Iterate ``sorted(...)`` instead
    (the autofix) or restructure onto a list/dict.  Dict iteration is
    insertion-ordered and therefore *not* flagged.
    """
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        set_names = _local_set_names(module.ctx.tree)
        for node in ast.walk(module.ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                terminal = _dotted(node.func)
                if terminal in ("list", "tuple") and len(node.args) == 1:
                    iters.append(node.args[0])
            for it in iters:
                if _is_setish(it, set_names):
                    yield _violation(
                        project, module.name, "SIM009", it,
                        "iteration over an unordered set; order leaks "
                        "into downstream results — iterate "
                        "sorted(...) instead",
                        fix=_sorted_fix(module, it),
                    )


# ---------------------------------------------------------------------------
# SIM010 — cache-key soundness for dataclass-configured hashes
# ---------------------------------------------------------------------------


def _annotation_target(project: Project, module: str,
                       annotation: Optional[ast.expr]
                       ) -> Optional[ClassInfo]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value,
                                   mode="eval").body
        except SyntaxError:
            return None
    dotted = _dotted(annotation)
    if dotted is None:
        return None
    resolved = project.resolve(module, dotted)
    if resolved is None:
        return None
    cls = project.class_named(resolved)
    if cls is not None and cls.is_dataclass():
        return cls
    return None


def _is_key_builder(func: FunctionInfo) -> bool:
    """Whether the function computes a content hash/key."""
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if dotted.split(".")[-1] in _HASH_NAMES or \
                    dotted.startswith("hashlib."):
                return True
    return False


def _consumed_fields(func: FunctionInfo, param: str) -> Optional[Set[str]]:
    """Fields of ``param`` read in ``func``; ``None`` = all consumed
    (the parameter escapes whole into a call, so every field flows)."""
    fields: Set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == param:
            fields.add(node.attr)
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in
                                          node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == param:
                    return None
    return fields


@rule("SIM010", "every result-affecting dataclass field is folded into "
                "the content key", project=True)
def check_key_ingredients(project: Project, graph: CallGraph
                          ) -> Iterator[Violation]:
    """A key builder (a function hashing a project dataclass) that
    reads only *some* fields produces colliding keys: two configs that
    differ in an unhashed field share a cache entry, and the second run
    silently returns the first run's results.  Passing the parameter
    whole (``asdict(cfg)``, ``pickle.dumps(cfg)``) consumes every
    field; explicit field picks must be exhaustive.
    """
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        if not _is_key_builder(func):
            continue
        args = func.node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        for param in params:
            cls = _annotation_target(project, func.module,
                                     param.annotation)
            if cls is None:
                continue
            consumed = _consumed_fields(func, param.arg)
            if consumed is None:
                continue
            missing = [f for f in cls.dataclass_fields()
                       if f not in consumed]
            for name in missing:
                yield _violation(
                    project, func.module, "SIM010", func.node,
                    f"key builder {_short(qualname)!r} hashes "
                    f"{cls.name!r} but never reads field {name!r}; "
                    "configs differing only in it will collide in "
                    "the cache",
                )


# ---------------------------------------------------------------------------
# SIM011 — emit_row rows match the registered event schemas
# ---------------------------------------------------------------------------


def _schema_registry(project: Project
                     ) -> Optional[Dict[str, frozenset]]:
    """The merged ``EVENT_SCHEMAS`` dict-literal registry, if present."""
    registry: Dict[str, frozenset] = {}
    found = False
    for module_name in sorted(project.modules):
        value = project.modules[module_name].assigns.get(
            _SCHEMA_REGISTRY_NAME)
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            names: set[str] = set()
            elements: list[ast.expr] = []
            if isinstance(val, (ast.Set, ast.Tuple, ast.List)):
                elements = list(val.elts)
            elif isinstance(val, ast.Call) and val.args and \
                    isinstance(val.args[0], (ast.Set, ast.Tuple,
                                             ast.List)):
                elements = list(val.args[0].elts)
            for element in elements:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    names.add(element.value)
            registry[key.value] = frozenset(names)
            found = True
    return registry if found else None


def _row_kinds(project: Project, module: str,
               value: ast.expr) -> Optional[List[str]]:
    """Candidate kind strings of a row's ``"kind"`` value expression."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return [value.value]
    if isinstance(value, ast.Subscript):
        table = _dotted(value.value)
        if table is None:
            return None
        resolved = project.resolve(module, table)
        if resolved is None:
            return None
        literal = project.module_value(resolved)
        if isinstance(literal, ast.Dict):
            kinds = [v.value for v in literal.values
                     if isinstance(v, ast.Constant)
                     and isinstance(v.value, str)]
            return sorted(kinds) or None
    return None


@rule("SIM011", "emit_row row keys match the registered obs event "
                "schemas", project=True)
def check_event_row_schemas(project: Project, graph: CallGraph
                            ) -> Iterator[Violation]:
    """Hot-path sites hand :meth:`Tracer.emit_row` a prebuilt dict; the
    obs layer serializes it as-is.  A site whose keys drift from the
    registered schema (``EVENT_SCHEMAS`` in :mod:`repro.obs.events`)
    ships rows downstream consumers cannot parse — and the mismatch
    only surfaces when someone replays the log.  Literal rows are
    checked against the registry; rows whose kind cannot be resolved
    statically are skipped.
    """
    registry = _schema_registry(project)
    if registry is None:
        return
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        for node in ast.walk(module.ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit_row"
                    and len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Dict)):
                continue
            row = node.args[0]
            keys: set[str] = set()
            literal = True
            kind_value: Optional[ast.expr] = None
            for key, value in zip(row.keys, row.values):
                if key is None or not (isinstance(key, ast.Constant)
                                       and isinstance(key.value, str)):
                    literal = False
                    break
                keys.add(key.value)
                if key.value == "kind":
                    kind_value = value
            if not literal:
                continue
            missing_protocol = _ROW_PROTOCOL_KEYS - keys
            if missing_protocol:
                yield _violation(
                    project, module.name, "SIM011", row,
                    "emit_row row lacks required key(s) "
                    f"{sorted(missing_protocol)}; every row carries "
                    "\"t\" and \"kind\"",
                )
                continue
            kinds = _row_kinds(project, module.name, kind_value) \
                if kind_value is not None else None
            if kinds is None:
                continue
            payload = frozenset(keys - _ROW_PROTOCOL_KEYS)
            for kind in kinds:
                schema = registry.get(kind)
                if schema is None:
                    yield _violation(
                        project, module.name, "SIM011", row,
                        f"emit_row kind {kind!r} is not registered in "
                        f"{_SCHEMA_REGISTRY_NAME}; register its schema "
                        "in repro.obs.events",
                    )
                    continue
                if payload != schema:
                    extra = sorted(payload - schema)
                    absent = sorted(schema - payload)
                    detail = []
                    if extra:
                        detail.append(f"extra keys {extra}")
                    if absent:
                        detail.append(f"missing keys {absent}")
                    yield _violation(
                        project, module.name, "SIM011", row,
                        f"emit_row row for kind {kind!r} does not "
                        f"match its registered schema: "
                        f"{'; '.join(detail)}",
                    )


# ---------------------------------------------------------------------------
# SIM012 — transitive wall-clock/env reads reaching the hot path
# ---------------------------------------------------------------------------


@rule("SIM012", "no transitive wall-clock/env reads on the hot path",
      project=True)
def check_transitive_ambient(project: Project, graph: CallGraph
                             ) -> Iterator[Violation]:
    """SIM006 bans *direct* clock reads outside ``repro.obs``; this is
    its flow-aware closure.  A function on the worker/hot path that
    calls — through any number of hops, including into helper modules —
    something that reads the wall clock or the environment couples
    simulation results to ambient machine state.  The violation lands
    on the hot-path call site and names the full chain to the sink.
    """
    parents = graph.reachable_from(entry_points(project))
    reachers = graph.ambient_reachers()
    for qualname in sorted(parents):
        func = project.functions.get(qualname)
        if func is None:
            continue
        for callee, call in graph.edges.get(qualname, []):
            if callee not in reachers:
                continue
            chain = graph.sink_chain(callee)
            sink_desc = reachers[callee][1]
            via = " -> ".join(_short(q) for q in chain)
            yield _violation(
                project, func.module, "SIM012", call,
                f"hot-path call into {_short(callee)!r} transitively "
                f"reads {sink_desc} (chain: {via}); ambient state must "
                "not reach worker-executed code",
            )
