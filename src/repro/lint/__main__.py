"""``python -m repro.lint`` — run the simlint pass."""

from __future__ import annotations

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Report truncated by a closed pipe (`... | head`): exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
