"""Per-file analysis context: source, AST, module name, suppressions.

A :class:`FileContext` is built once per file and handed to every rule,
so the tree is parsed exactly once and suppression comments are scanned
exactly once regardless of how many rules run.

Suppression syntax (one line)::

    risky_line()  # simlint: disable=SIM001 -- justification here
    other_line()  # simlint: disable=SIM002,SIM004

The rule list is comma-separated; anything after the ids (e.g. a
``--``-introduced justification) is ignored by the parser but expected
by review policy.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = ["FileContext", "build_context", "module_name_for", "parse_suppressions"]

#: Matches a suppression comment anywhere in a physical line.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Matches one rule id inside the captured list.
_RULE_ID_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    #: Dotted module name (``repro.sim.engine``) or ``None`` when the
    #: file lives outside a recognisable package root — in that case
    #: every rule applies (useful for fixture files in tests).
    module: Optional[str]
    source: str
    tree: ast.Module
    #: line number -> frozenset of rule ids disabled on that line.
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by a comment."""
        disabled = self.suppressions.get(line)
        return disabled is not None and rule_id in disabled


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number (1-based) to the rule ids disabled there."""
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = frozenset(
            m.group(0).upper() for m in _RULE_ID_RE.finditer(match.group(1))
        )
        if ids:
            table[lineno] = ids
    return table


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of ``path``, anchored at a ``repro`` component.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``/tmp/pytest-x/fixture.py`` -> ``None`` (no package root found), in
    which case the runner applies every rule regardless of scope.
    """
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    module_parts = list(parts[anchor:])
    leaf = module_parts[-1]
    if leaf.endswith(".py"):
        module_parts[-1] = leaf[: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


def build_context(path: Path, source: Optional[str] = None) -> FileContext:
    """Parse ``path`` (raising ``SyntaxError``/``OSError`` on failure)."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=str(path),
        module=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
