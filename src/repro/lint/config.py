"""Rule scoping: which packages each rule is enforced in.

The invariants are not uniform across the tree — e.g. the analysis
layer may legitimately compare report floats, and only ``repro.core`` +
``repro.sim`` promise complete public annotations (they ship
``py.typed``).  The table below maps rule id to the ``fnmatch``-style
module globs it covers; a file whose module name matches none of a
rule's globs is skipped for that rule.

Files with no recognisable module name (e.g. test fixtures in a temp
directory) get **every** rule: scoping is a property of the shipped
package layout, not of the analysis.

Globs prefixed with ``!`` are *exclusions*: a module matching any
negated pattern is out of scope regardless of the positive patterns
(``("repro*", "!repro.obs*")`` reads "everywhere except the
observability layer").  A scope of only exclusions covers everything
not excluded.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Mapping, Optional, Sequence

__all__ = ["DEFAULT_SCOPE", "rule_applies"]

#: rule id -> module globs the rule is enforced in.
DEFAULT_SCOPE: Mapping[str, Sequence[str]] = {
    # Ambient nondeterminism corrupts the engine's replay guarantee and
    # the CRN discipline, both of which live in these three packages.
    "SIM001": ("repro.sim*", "repro.core*", "repro.workload*"),
    # Simulation-time floats circulate through metrics as well.
    "SIM002": ("repro.sim*", "repro.core*", "repro.workload*", "repro.metrics*"),
    # Process generators exist wherever a Simulator is driven.
    "SIM003": ("repro.sim*", "repro.core*", "repro.workload*"),
    # The typed-API promise (py.typed) is made by core + sim only.
    "SIM004": ("repro.core*", "repro.sim*"),
    # Export lists must be truthful everywhere.
    "SIM005": ("repro*",),
    # Wall-clock access is the observability layer's monopoly: the
    # simulation packages ban it as entropy (SIM001), and the rest of
    # the repository must route timing through repro.obs so the
    # determinism contract meets real time in exactly one place.
    "SIM006": ("repro*", "!repro.obs*"),
    # Pool pickling breaks identically wherever execute() is called.
    "SIM007": ("repro*",),
    # Worker-reachable module state diverges across processes in the
    # packages whose code the pool actually ships.
    "SIM008": ("repro.sim*", "repro.core*", "repro.workload*",
               "repro.runner*"),
    # Set-iteration order feeds scheduling, task keys and serialized
    # results in the deterministic packages; the analysis layer only
    # consumes already-ordered reports.
    "SIM009": ("repro.sim*", "repro.core*", "repro.workload*",
               "repro.runner*", "repro.metrics*"),
    # Cache-key soundness matters wherever keys are derived.
    "SIM010": ("repro*",),
    # Event-schema conformance matters at every emit site.
    "SIM011": ("repro*",),
    # Flow-aware closure of SIM006: ambient reads must not reach the
    # hot path through any chain of calls — except inside repro.obs,
    # which owns the clock by contract.
    "SIM012": ("repro*", "!repro.obs*"),
}


def rule_applies(
    rule_id: str,
    module: Optional[str],
    scope: Optional[Mapping[str, Sequence[str]]] = None,
) -> bool:
    """Whether ``rule_id`` is in force for ``module`` under ``scope``.

    ``module=None`` (no package root found) enables every rule; a rule
    absent from the scope table is likewise enforced everywhere.
    Patterns prefixed with ``!`` exclude matching modules (checked
    before the positive patterns).
    """
    if module is None:
        return True
    patterns = (DEFAULT_SCOPE if scope is None else scope).get(rule_id)
    if not patterns:
        return True
    positive = [p for p in patterns if not p.startswith("!")]
    for pattern in patterns:
        if pattern.startswith("!") and fnmatchcase(module, pattern[1:]):
            return False
    if not positive:
        return True
    return any(fnmatchcase(module, pattern) for pattern in positive)
