"""The simlint rule registry and the five shipped rules.

Each rule is a function ``(FileContext) -> Iterator[Violation]``
registered under a stable id via the :func:`rule` decorator.  Rules
report *raw* findings; the runner applies scope filtering and
``# simlint: disable=`` suppressions, so rule code stays focused on the
AST pattern it detects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from .context import FileContext
from .types import Violation

__all__ = ["RULES", "Rule", "RuleCheck", "all_rule_ids", "rule"]

#: Per-file rules take a FileContext; project rules (``project=True``)
#: take ``(Project, CallGraph)`` and run once per lint invocation.
RuleCheck = Callable[..., Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line summary, check function."""

    id: str
    summary: str
    check: RuleCheck
    #: Whole-program rules run once over the Project/CallGraph instead
    #: of once per file (SIM007+).
    project: bool = False


#: Registry, id -> Rule, populated by the :func:`rule` decorator.
RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str, summary: str, *, project: bool = False
) -> Callable[[RuleCheck], RuleCheck]:
    """Register ``check`` under ``rule_id`` in :data:`RULES`."""

    def register(check: RuleCheck) -> RuleCheck:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = Rule(rule_id, summary, check, project=project)
        return check

    return register


def all_rule_ids() -> tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(RULES))


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _violation(ctx: FileContext, rule_id: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
    )


# ---------------------------------------------------------------------------
# SIM001 — ambient nondeterminism
# ---------------------------------------------------------------------------

#: Dotted call/attribute chains (or 2-part suffixes of longer chains)
#: that read wall-clock time or operating-system entropy.
_BANNED_AMBIENT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Samplers of numpy's *module-level* legacy RNG — global mutable state
#: seeded from the OS unless someone called ``np.random.seed``; either
#: way it bypasses the StreamFactory substream discipline.
_NP_LEGACY_SAMPLERS = frozenset(
    {
        "seed",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "gamma",
        "beta",
        "lognormal",
        "weibull",
        "pareto",
    }
)


def _ambient_message(dotted: str) -> str:
    return (
        f"ambient nondeterminism: {dotted!r} reads wall-clock/OS entropy; "
        "derive all randomness from a named StreamFactory substream"
    )


def _is_banned_ambient(dotted: str) -> bool:
    parts = dotted.split(".")
    if dotted in _BANNED_AMBIENT:
        return True
    # `datetime.datetime.now` / `dt.datetime.now`: check 2-part suffixes.
    return len(parts) > 2 and ".".join(parts[-2:]) in _BANNED_AMBIENT


def _np_random_tail(dotted: str) -> Optional[str]:
    """``X`` from ``np.random.X``/``numpy.random.X``, else ``None``."""
    for prefix in ("np.random.", "numpy.random."):
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
    return None


@rule("SIM001", "no ambient nondeterminism (wall clock, OS entropy, global RNG)")
def check_ambient_nondeterminism(ctx: FileContext) -> Iterator[Violation]:
    """Forbid entropy sources outside the StreamFactory discipline."""
    call_funcs = {
        id(node.func) for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)
    }
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield _violation(
                        ctx, "SIM001", node,
                        "'import random' bypasses StreamFactory; use a "
                        "named np.random.Generator substream",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.split(".")[0] == "random":
                yield _violation(
                    ctx, "SIM001", node,
                    "'from random import ...' bypasses StreamFactory; use "
                    "a named np.random.Generator substream",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            if _is_banned_ambient(dotted):
                yield _violation(ctx, "SIM001", node, _ambient_message(dotted))
                continue
            tail = _np_random_tail(dotted)
            if tail is None:
                continue
            if tail == "default_rng" and not node.args and not node.keywords:
                yield _violation(
                    ctx, "SIM001", node,
                    "unseeded np.random.default_rng() draws OS entropy; "
                    "pass a seed or a StreamFactory substream",
                )
            elif tail == "RandomState" and not node.args and not node.keywords:
                yield _violation(
                    ctx, "SIM001", node,
                    "unseeded np.random.RandomState() draws OS entropy; "
                    "pass a seed or use a StreamFactory substream",
                )
            elif tail in _NP_LEGACY_SAMPLERS:
                yield _violation(
                    ctx, "SIM001", node,
                    f"np.random.{tail} uses numpy's global RNG; draw from "
                    "a named StreamFactory substream instead",
                )
        elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
            # A banned function passed around by reference (`key=time.time`)
            # is just as nondeterministic as calling it.
            dotted = _dotted_name(node)
            if dotted is not None and _is_banned_ambient(dotted):
                yield _violation(ctx, "SIM001", node, _ambient_message(dotted))


# ---------------------------------------------------------------------------
# SIM002 — float equality on simulation-time expressions
# ---------------------------------------------------------------------------

#: A name denotes simulation time if it matches the issue's pattern
#: (`now|time|t_*|deadline|arrival`) directly or as a `_`-separated
#: suffix/prefix compound (`arrival_time`, `submit_deadline`, ...).
_TIME_NAME_RE = re.compile(
    r"^(?:now|time|t_\w+|deadline|arrival)$"
    r"|^\w+_(?:time|deadline|arrival)$"
    r"|^(?:time|deadline|arrival)_\w+$"
)


def _is_time_expression(node: ast.AST) -> Optional[str]:
    """The offending name when ``node`` reads like simulation time."""
    name = _terminal_name(node)
    if name is not None and _TIME_NAME_RE.match(name):
        return name
    return None


@rule("SIM002", "no float ==/!= against simulation-time expressions")
def check_float_time_equality(ctx: FileContext) -> Iterator[Violation]:
    """Exact equality on accumulated float clocks is order-dependent.

    ``a + b + c == c + b + a`` can be false in IEEE-754, so comparing
    times with ``==``/``!=`` makes behaviour depend on event-processing
    order — precisely what the deterministic engine forbids.  Use
    ``<=``/``>=`` windows or ``math.isclose`` instead.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            name = _is_time_expression(left) or _is_time_expression(right)
            if name is None:
                continue
            symbol = "==" if isinstance(op, ast.Eq) else "!="
            yield _violation(
                ctx, "SIM002", left if _is_time_expression(left) else right,
                f"float {symbol} on simulation-time expression {name!r}; "
                "use <=/>= windows or math.isclose",
            )


# ---------------------------------------------------------------------------
# SIM003 — re-entrant Simulator.run inside process generators
# ---------------------------------------------------------------------------

#: Receiver names that denote the simulation engine by convention.
_SIM_RECEIVER_RE = re.compile(r"^(?:sim|simulator|env|environment|engine)$")


def _own_yield(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """``True`` when the function itself is a generator."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested def: its yields belong to it, not to func
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@rule("SIM003", "no re-entrant Simulator.run inside process generators")
def check_reentrant_run(ctx: FileContext) -> Iterator[Violation]:
    """Model code runs *inside* ``Simulator.step``; calling ``run`` there
    re-enters the driver loop and corrupts the clock.  Detection is by
    convention: a ``.run(...)`` call whose receiver is named like an
    engine (``sim``, ``simulator``, ``env``, ...) or ends in ``.sim``,
    appearing in a generator function (a simulation process).
    """
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _own_yield(func):
            continue
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "run":
                continue
            receiver = node.func.value
            terminal = _terminal_name(receiver)
            if terminal is not None and _SIM_RECEIVER_RE.match(terminal):
                yield _violation(
                    ctx, "SIM003", node,
                    f"re-entrant call {_dotted_name(node.func) or 'run'}() "
                    f"inside process generator {func.name!r}; processes "
                    "must yield events, never drive the engine",
                )


# ---------------------------------------------------------------------------
# SIM004 — complete public type annotations
# ---------------------------------------------------------------------------


def _decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in func.decorator_list:
        name = _terminal_name(dec.func if isinstance(dec, ast.Call) else dec)
        if name is not None:
            names.add(name)
    return names


def _missing_annotations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, *, is_method: bool
) -> list[str]:
    """Human-readable names of unannotated parameters / return."""
    missing: list[str] = []
    args = func.args
    positional = args.posonlyargs + args.args
    skip_first = is_method and "staticmethod" not in _decorator_names(func)
    for index, arg in enumerate(positional):
        if index == 0 and skip_first:
            continue  # self / cls carry no annotation by convention
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


def _is_public_name(name: str) -> bool:
    """Public: no leading underscore, or a dunder (part of the protocol)."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


@rule("SIM004", "public core/sim functions carry complete type annotations")
def check_public_annotations(ctx: FileContext) -> Iterator[Violation]:
    """The package ships ``py.typed``; unannotated public API breaks it."""
    module_leaf = (ctx.module or "").rsplit(".", maxsplit=1)[-1]
    if module_leaf.startswith("_") and module_leaf != "__init__" and ctx.module:
        return  # private modules make no typed-API promise

    def visit(body: list[ast.stmt], *, in_class: bool, owner: str) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if _is_public_name(node.name):
                    yield from visit(node.body, in_class=True, owner=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public_name(node.name):
                    continue
                missing = _missing_annotations(node, is_method=in_class)
                if missing:
                    qualified = f"{owner}.{node.name}" if owner else node.name
                    yield _violation(
                        ctx, "SIM004", node,
                        f"public {'method' if in_class else 'function'} "
                        f"{qualified!r} missing annotations: "
                        f"{', '.join(missing)}",
                    )

    yield from visit(ctx.tree.body, in_class=False, owner="")


# ---------------------------------------------------------------------------
# SIM005 — __all__ entries resolve
# ---------------------------------------------------------------------------


def _assigned_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


def _module_level_names(tree: ast.Module) -> tuple[set[str], bool]:
    """(names bound at module level, saw a ``from x import *``)."""
    names: set[str] = set()
    star_import = False

    def visit(body: list[ast.stmt]) -> None:
        nonlocal star_import
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_assigned_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                names.update(_assigned_names(node.target))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)
            elif isinstance(node, (ast.For, ast.While)):
                if isinstance(node, ast.For):
                    names.update(_assigned_names(node.target))
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.With):
                visit(node.body)

    visit(tree.body)
    return names, star_import


def _all_entries(tree: ast.Module) -> Iterator[tuple[str, ast.expr]]:
    """(entry, node) for each string literal in ``__all__`` updates."""
    for node in tree.body:
        values: list[ast.expr] = []
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            values.append(node.value)
        elif (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            values.append(node.value)
        for value in values:
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        yield element.value, element


@rule("SIM005", "__all__ entries resolve to real module attributes")
def check_all_resolves(ctx: FileContext) -> Iterator[Violation]:
    """A phantom ``__all__`` entry turns ``import *`` and the public-API
    tests into runtime errors; keep export lists truthful."""
    names, star_import = _module_level_names(ctx.tree)
    if star_import:
        return  # cannot prove anything once `import *` is in play
    for entry, node in _all_entries(ctx.tree):
        if entry not in names:
            yield _violation(
                ctx, "SIM005", node,
                f"__all__ entry {entry!r} does not resolve to a "
                "module-level attribute",
            )


# ---------------------------------------------------------------------------
# SIM006 — wall-clock reads confined to repro.obs
# ---------------------------------------------------------------------------

#: Host-clock readers (calls or references); 2-part suffixes of longer
#: chains match too, as in SIM001.
_BANNED_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: ``from time import X`` names that read the host clock.
_CLOCK_FROM_IMPORTS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)


def _is_banned_clock(dotted: str) -> bool:
    parts = dotted.split(".")
    if dotted in _BANNED_CLOCKS:
        return True
    return len(parts) > 2 and ".".join(parts[-2:]) in _BANNED_CLOCKS


def _clock_message(dotted: str) -> str:
    return (
        f"wall-clock read {dotted!r} outside repro.obs; route timing "
        "through repro.obs.timing (wall_clock/process_clock/PhaseTimer)"
    )


@rule("SIM006", "wall-clock reads are confined to repro.obs")
def check_clock_confinement(ctx: FileContext) -> Iterator[Violation]:
    """Observability owns the host clock; everything else stays pure.

    SIM001 already bans clocks in the simulation packages as entropy;
    this rule extends the ban to the rest of the repository (runner,
    analysis, CLI) so that *every* wall-clock read flows through
    ``repro.obs`` — the single, auditable place where the determinism
    contract is allowed to meet real time.
    """
    call_funcs = {
        id(node.func) for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)
    }
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FROM_IMPORTS:
                        yield _violation(
                            ctx, "SIM006", node,
                            _clock_message(f"time.{alias.name}"),
                        )
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None and _is_banned_clock(dotted):
                yield _violation(ctx, "SIM006", node, _clock_message(dotted))
        elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
            # A clock passed by reference (`clock=time.perf_counter`)
            # leaks wall time exactly like calling it.
            dotted = _dotted_name(node)
            if dotted is not None and _is_banned_clock(dotted):
                yield _violation(ctx, "SIM006", node, _clock_message(dotted))
