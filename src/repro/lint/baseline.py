"""Committed violation baseline: stricter rules gate only new findings.

Adopting a whole-program rule on a living tree either means fixing
every legacy finding in the adopting PR (often impossible) or turning
the rule off.  The baseline is the third option: ``--update-baseline``
records the current findings as *accepted debt* in a committed JSON
file, and subsequent runs report only violations **not** in it.  Debt
is paid down monotonically — a fixed finding simply disappears; it is
never re-admitted without an explicit baseline refresh.

Fingerprints are deliberately **line-independent**: hashing
``relative-path | rule | message`` means unrelated edits that shift a
baselined finding up or down the file do not resurrect it.  Two
identical findings in one file share a fingerprint, so the baseline
stores a per-fingerprint *count* — introducing a third copy of a
twice-baselined violation is reported.

The shipped tree keeps its baseline **empty** (the acceptance gate):
the file exists so the workflow is exercised, not to house debt.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .types import Violation

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "fingerprint",
    "write_baseline",
]

#: File name probed in the current directory when ``--baseline`` is not
#: given explicitly.
DEFAULT_BASELINE_NAME = ".simlint-baseline.json"

_VERSION = 1


def _relative(path: str, root: Path) -> str:
    """``path`` relative to ``root`` (posix), or unchanged if outside."""
    try:
        return Path(path).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def fingerprint(violation: Violation, root: Path) -> str:  # simlint: disable=SIM010 -- line/col/fix omitted BY DESIGN: fingerprints must survive edits that shift findings; duplicates handled via per-fingerprint counts
    """Stable, line-independent identity of one finding."""
    raw = f"{_relative(violation.path, root)}|{violation.rule}|" \
          f"{violation.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """Accepted findings, fingerprint -> occurrence count."""

    #: Directory fingerprints are computed relative to (the baseline
    #: file's parent), so the file is location-independent.
    root: Path
    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        root = path.resolve().parent
        if not path.exists():
            return cls(root=root)
        data = json.loads(path.read_text(encoding="utf-8"))
        counts = {
            entry["fingerprint"]: int(entry.get("count", 1))
            for entry in data.get("findings", [])
        }
        return cls(root=root, counts=counts)

    def filter(self, violations: Iterable[Violation]
               ) -> Tuple[List[Violation], int]:
        """(fresh violations, number suppressed by the baseline).

        Each baselined fingerprint absorbs up to its recorded count;
        occurrences beyond that are fresh findings.
        """
        budget = dict(self.counts)
        fresh: List[Violation] = []
        suppressed = 0
        for violation in violations:
            fp = fingerprint(violation, self.root)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                suppressed += 1
            else:
                fresh.append(violation)
        return fresh, suppressed


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Record ``violations`` as the accepted baseline at ``path``.

    Entries carry the human-readable context (rule, path, message)
    alongside the fingerprint so baseline diffs review like code.
    Returns the number of distinct fingerprints written.
    """
    root = path.resolve().parent
    merged: Dict[str, dict] = {}
    for violation in sorted(violations):
        fp = fingerprint(violation, root)
        entry = merged.setdefault(fp, {
            "fingerprint": fp,
            "rule": violation.rule,
            "path": _relative(violation.path, root),
            "message": violation.message,
            "count": 0,
        })
        entry["count"] += 1
    document = {
        "version": _VERSION,
        "tool": "simlint",
        "findings": [merged[fp] for fp in sorted(merged)],
    }
    path.write_text(json.dumps(document, indent=2) + "\n",
                    encoding="utf-8")
    return len(merged)
