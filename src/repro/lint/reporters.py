"""Render a :class:`~repro.lint.runner.LintResult` for humans or tools."""

from __future__ import annotations

import json

from .runner import LintResult

__all__ = ["render_json", "render_text"]


def render_text(result: LintResult) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [error.format() for error in result.errors]
    lines.extend(violation.format() for violation in result.violations)
    if result.clean:
        lines.append(
            f"simlint: {result.files_checked} file(s) checked, no violations"
        )
    else:
        tally = ", ".join(
            f"{rule_id}: {count}"
            for rule_id, count in result.counts_by_rule().items()
        )
        summary = (
            f"simlint: {len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
        if tally:
            summary += f" ({tally})"
        if result.errors:
            summary += f"; {len(result.errors)} file(s) unparsable"
        lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "files_checked": result.files_checked,
        "violations": [violation.to_dict() for violation in result.violations],
        "errors": [error.to_dict() for error in result.errors],
        "counts_by_rule": result.counts_by_rule(),
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
