"""Render a :class:`~repro.lint.runner.LintResult` for humans or tools.

Three formats: ``text`` (GCC-style, for terminals), ``json`` (stable
machine-readable), and ``sarif`` (SARIF 2.1.0, for GitHub code
scanning and other SARIF consumers).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .rules import RULES
from .runner import LintResult

__all__ = ["render_json", "render_sarif", "render_text"]

#: Schema URI SARIF consumers key on; the version must match it.
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")
_SARIF_VERSION = "2.1.0"


def render_text(result: LintResult) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [error.format() for error in result.errors]
    lines.extend(violation.format() for violation in result.violations)
    if result.clean:
        lines.append(
            f"simlint: {result.files_checked} file(s) checked, no violations"
        )
        if result.baselined:
            lines[-1] += f" ({result.baselined} baselined)"
    else:
        tally = ", ".join(
            f"{rule_id}: {count}"
            for rule_id, count in result.counts_by_rule().items()
        )
        summary = (
            f"simlint: {len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
        if tally:
            summary += f" ({tally})"
        if result.errors:
            summary += f"; {len(result.errors)} file(s) unparsable"
        if result.baselined:
            summary += f"; {result.baselined} baselined finding(s) hidden"
        lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "files_checked": result.files_checked,
        "violations": [violation.to_dict() for violation in result.violations],
        "errors": [error.to_dict() for error in result.errors],
        "counts_by_rule": result.counts_by_rule(),
        "baselined": result.baselined,
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str, root: Optional[Path]) -> str:
    """Repo-relative posix URI when ``root`` contains ``path``."""
    p = Path(path)
    if root is not None:
        try:
            return p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return p.as_posix()


def render_sarif(result: LintResult, *, root: Optional[Path] = None) -> str:
    """SARIF 2.1.0 report — one run, one result per violation.

    ``root`` (default: the current directory) becomes the
    ``srcroot`` uriBaseId so GitHub code scanning can anchor findings
    to repository paths.  Parse errors are emitted as tool
    ``notifications`` with level ``error``, matching their exit-code-2
    severity.
    """
    if root is None:
        root = Path.cwd()
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": RULES[rule_id].summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in sorted(RULES)
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(RULES))}
    results = []
    for violation in result.violations:
        entry = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(violation.path, root),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.rule in rule_index:
            entry["ruleIndex"] = rule_index[violation.rule]
        results.append(entry)
    notifications = [
        {
            "level": "error",
            "message": {"text": error.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(error.path, root),
                            "uriBaseId": "SRCROOT",
                        }
                    }
                }
            ],
        }
        for error in result.errors
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "simlint",
                "informationUri": "https://example.invalid/simlint",
                "rules": rules,
            }
        },
        "originalUriBaseIds": {
            "SRCROOT": {"uri": root.resolve().as_uri() + "/"}
        },
        "columnKind": "utf16CodeUnits",
        "results": results,
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolExecutionNotifications": notifications,
            }
        ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2)
