"""Import graph, call graph and worker/hot-path reachability.

Built on the :class:`~repro.lint.symbols.Project` symbol table, this
module answers the question the cross-module rules all share: *which
functions can actually run inside a worker process / the simulation
hot path?*

The call graph is deliberately conservative.  An edge is added only
when a call target resolves unambiguously:

* a plain or dotted name resolving through the symbol table
  (``execute(...)``, ``pool.execute(...)``, re-export chains chased);
* ``self.method(...)`` / ``cls.method(...)`` inside a class, linked to
  the *same class's* method (base-class dispatch is not guessed);
* a class constructor call, linked to its ``__init__``.

Anything else (duck-typed attribute calls, callables passed as values)
stays unresolved, so reachability under-approximates rather than
over-approximates — rules built on it report fewer, firmer findings.

Entry points are matched **by shape, not by hard-coded path**, so the
analysis works identically on the shipped tree and on test fixtures:

* functions named ``run_task`` / ``run_task_result`` (the pool ships
  exactly these to worker processes — :mod:`repro.runner.worker`);
* ``Simulator.run`` / ``Simulator.run_while`` / ``Simulator.step``
  (the engine's drive loop — :mod:`repro.sim.engine`);
* public functions of a module named ``placement`` (the placement
  kernels invoked per scheduling attempt).

Besides call edges the builder records **ambient sinks** per function:
direct wall-clock reads (``time.time`` and friends, the SIM006 set)
and environment reads (``os.environ`` / ``os.getenv``).  SIM012 uses
the transitive closure of these to catch clock/env influence that
per-file analysis cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symbols import FunctionInfo, Project

__all__ = [
    "AmbientSink",
    "CallGraph",
    "build_call_graph",
    "entry_points",
    "import_graph",
    "is_entry_point",
]

#: Function names the pool pickles and executes in worker processes.
_WORKER_ENTRY_NAMES = frozenset({"run_task", "run_task_result"})

#: Engine drive-loop methods (class named Simulator).
_ENGINE_ENTRY_METHODS = frozenset({"run", "run_while", "step"})

#: Module leaf whose public functions are per-attempt kernels.
_KERNEL_MODULE_LEAF = "placement"

#: Wall-clock readers — kept in sync with the SIM006 rule set.
_CLOCK_SUFFIXES = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.thread_time", "time.thread_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    }
)


@dataclass(frozen=True)
class AmbientSink:
    """One direct wall-clock or environment read inside a function."""

    #: ``"clock"`` or ``"env"``.
    kind: str
    #: The offending dotted expression (``time.perf_counter``).
    what: str
    line: int


@dataclass
class CallGraph:
    """Resolved call edges plus ambient sinks, per function."""

    project: Project
    #: caller qualname -> {(callee qualname, call node)}.
    edges: Dict[str, List[Tuple[str, ast.Call]]] = field(
        default_factory=dict)
    #: function qualname -> direct ambient reads inside it.
    sinks: Dict[str, List[AmbientSink]] = field(default_factory=dict)

    def callees(self, qualname: str) -> List[str]:
        return [callee for callee, _ in self.edges.get(qualname, [])]

    def reachable_from(self, seeds: Iterable[str]
                       ) -> Dict[str, Optional[str]]:
        """BFS over call edges: reachable qualname -> its BFS parent
        (``None`` for the seeds themselves).  Deterministic order."""
        parents: Dict[str, Optional[str]] = {}
        frontier = sorted(set(seeds))
        for seed in frontier:
            parents[seed] = None
        while frontier:
            next_frontier: list[str] = []
            for caller in frontier:
                for callee in self.callees(caller):
                    if callee in parents:
                        continue
                    parents[callee] = caller
                    next_frontier.append(callee)
            frontier = sorted(set(next_frontier))
        return parents

    def chain(self, parents: Dict[str, Optional[str]],
              qualname: str) -> List[str]:
        """Seed-to-``qualname`` call chain under a reachability map."""
        chain = [qualname]
        seen = {qualname}
        while True:
            parent = parents.get(chain[-1])
            if parent is None or parent in seen:
                break
            chain.append(parent)
            seen.add(parent)
        return list(reversed(chain))

    def ambient_reachers(self) -> Dict[str, Tuple[str, str]]:
        """Functions whose transitive call closure reads clock/env.

        Returns qualname -> (next hop toward a sink, sink description);
        a function with a *direct* sink maps to itself.  Fixed-point
        over the reversed edges, deterministic iteration order.
        """
        reach: Dict[str, Tuple[str, str]] = {}
        for qualname in sorted(self.sinks):
            sink = self.sinks[qualname][0]
            reach[qualname] = (qualname,
                               f"{sink.what} ({sink.kind} read)")
        changed = True
        while changed:
            changed = False
            for caller in sorted(self.edges):
                if caller in reach:
                    continue
                for callee, _ in self.edges[caller]:
                    if callee in reach:
                        reach[caller] = (callee, reach[callee][1])
                        changed = True
                        break
        return reach

    def sink_chain(self, qualname: str) -> List[str]:
        """``qualname -> ... -> sink-owner`` hop list (for messages)."""
        reach = self.ambient_reachers()
        chain = [qualname]
        while chain[-1] in reach:
            hop = reach[chain[-1]][0]
            if hop == chain[-1]:
                break
            chain.append(hop)
        return chain


def is_entry_point(func: FunctionInfo) -> bool:
    """Whether ``func`` matches a worker/hot-path entry-point shape."""
    if func.cls is None:
        if func.name in _WORKER_ENTRY_NAMES:
            return True
        module_leaf = func.module.rsplit(".", 1)[-1]
        return (module_leaf == _KERNEL_MODULE_LEAF
                and not func.name.startswith("_"))
    return (func.cls == "Simulator"
            and func.name in _ENGINE_ENTRY_METHODS)


def entry_points(project: Project) -> List[str]:
    """Qualified names of every entry point in ``project``, sorted."""
    return sorted(q for q, f in project.functions.items()
                  if is_entry_point(f))


def import_graph(project: Project) -> Dict[str, Set[str]]:
    """Module -> set of imported modules (project-internal edges only)."""
    graph: Dict[str, Set[str]] = {}
    for name, info in sorted(project.modules.items()):
        targets: Set[str] = set()
        for qualified in info.imports.values():
            # An import target is either a module or module.attr; keep
            # whichever prefix is an indexed module.
            if qualified in project.modules:
                targets.add(qualified)
                continue
            prefix = qualified.rpartition(".")[0]
            if prefix in project.modules:
                targets.add(prefix)
        graph[name] = targets
    return graph


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_clock_read(dotted: str) -> bool:
    parts = dotted.split(".")
    for take in (2, 3):
        if len(parts) >= take and \
                ".".join(parts[-2:]) in _CLOCK_SUFFIXES:
            return True
    return dotted in _CLOCK_SUFFIXES


def _is_env_read(dotted: str) -> bool:
    return (dotted.startswith("os.environ")
            or dotted == "os.getenv"
            or dotted.endswith(".os.environ"))


def _function_body_nodes(func: FunctionInfo) -> Iterable[ast.AST]:
    """All nodes of a function body, *including* nested defs/lambdas —
    a closure defined here runs with this function's privileges."""
    for stmt in func.node.body:
        yield from ast.walk(stmt)


def _resolve_call(project: Project, func: FunctionInfo,
                  call: ast.Call) -> Optional[str]:
    """The qualified callee of ``call`` inside ``func``, if provable."""
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in ("self", "cls") and func.cls is not None and rest \
            and "." not in rest:
        owner = project.modules.get(func.module)
        if owner is not None:
            cls = owner.classes.get(func.cls)
            if cls is not None and rest in cls.methods:
                return cls.methods[rest].qualname
        return None
    resolved = project.resolve(func.module, dotted)
    if resolved is None:
        return None
    if resolved in project.functions:
        return resolved
    cls = project.class_named(resolved)
    if cls is not None:
        init = cls.methods.get("__init__")
        return init.qualname if init is not None else None
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Resolve call edges and ambient sinks for every function."""
    graph = CallGraph(project)
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        edges: List[Tuple[str, ast.Call]] = []
        sinks: List[AmbientSink] = []
        for node in _function_body_nodes(func):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None:
                    if _is_clock_read(dotted):
                        sinks.append(AmbientSink(
                            "clock", dotted, node.lineno))
                        continue
                    if _is_env_read(dotted):
                        sinks.append(AmbientSink(
                            "env", dotted, node.lineno))
                        continue
                callee = _resolve_call(project, func, node)
                if callee is not None and callee != qualname:
                    edges.append((callee, node))
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                dotted = _dotted(node if isinstance(node, ast.Attribute)
                                 else node.value)
                if dotted is not None and _is_env_read(dotted):
                    sinks.append(AmbientSink("env", dotted, node.lineno))
        if edges:
            graph.edges[qualname] = edges
        if sinks:
            graph.sinks[qualname] = sinks
    return graph
