"""Command-line front end: ``python -m repro.lint`` / ``repro-sim lint``."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from .reporters import render_json, render_text
from .rules import RULES, all_rule_ids
from .runner import lint_paths

__all__ = ["build_parser", "main", "run"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser (exposed for the ``repro-sim lint`` subcommand)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: simulator-invariant static analysis",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro if it "
             "exists, else the current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> list[str]:
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def run(paths: Sequence[str], *, fmt: str = "text",
        select: Optional[Sequence[str]] = None) -> int:
    """Lint ``paths`` and print a report; returns the process exit code."""
    result = lint_paths(paths, select=select)
    print(render_json(result) if fmt == "json" else render_text(result))
    return result.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in all_rule_ids():
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0
    select: Optional[list[str]] = None
    if args.select is not None:
        select = [part.strip().upper() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in select if rule_id not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}; "
                  f"known: {', '.join(all_rule_ids())}")
            return 2
    return run(args.paths or _default_paths(), fmt=args.format, select=select)
