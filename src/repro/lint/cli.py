"""Command-line front end: ``python -m repro.lint`` / ``repro-sim lint``."""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline, write_baseline
from .fixes import apply_fixes, suppression_fixes
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, all_rule_ids
from .runner import lint_paths

__all__ = ["build_parser", "main", "run"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser (exposed for the ``repro-sim lint`` subcommand)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: simulator-invariant static analysis",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro if it "
             "exists, else the current directory)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE_NAME} in the current directory, if it "
             "exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report all findings)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="record the current findings as the accepted baseline "
             "and exit 0",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply the mechanical autofixes rules attach (e.g. the "
             "SIM009 sorted() wrap), then re-lint and report what "
             "remains",
    )
    parser.add_argument(
        "--fix-suppress", metavar="RULES", default=None,
        help="comma-separated rule ids whose findings get an inline "
             "'# simlint: disable=... -- TODO(justify)' comment "
             "(implies --fix for those insertions)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> list[str]:
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    """The baseline path in effect, or ``None`` when disabled/absent."""
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    # --update-baseline creates the default file; plain runs only use
    # a default baseline that already exists.
    if args.update_baseline or default.exists():
        return default
    return None


def run(paths: Sequence[str], *, fmt: str = "text",
        select: Optional[Sequence[str]] = None,
        baseline_path: Optional[Path] = None,
        update_baseline: bool = False,
        fix: bool = False,
        fix_suppress: Optional[Sequence[str]] = None) -> int:
    """Lint ``paths`` and print a report; returns the process exit code."""
    if update_baseline:
        assert baseline_path is not None
        result = lint_paths(paths, select=select)
        written = write_baseline(baseline_path, result.violations)
        print(f"simlint: baseline written to {baseline_path} "
              f"({written} finding(s), {len(result.violations)} "
              "occurrence(s))")
        return 0

    if fix or fix_suppress:
        # Fix from an un-baselined run: baselined findings may carry
        # fixes too, and fixing them pays the debt down for free.
        result = lint_paths(paths, select=select)
        fixable = result.violations
        if fix_suppress:
            fixable = suppression_fixes(fixable, fix_suppress)
        if not fix:
            # Only the suppression insertions were requested.
            fixable = [v for v in fixable
                       if v.fix is not None and v.fix.kind == "suppress"]
        applied = apply_fixes(fixable)
        edits = sum(applied.values())
        print(f"simlint: applied {edits} fix(es) in "
              f"{len(applied)} file(s)")

    baseline = Baseline.load(baseline_path) if baseline_path else None
    result = lint_paths(paths, select=select, baseline=baseline)
    if fmt == "json":
        print(render_json(result))
    elif fmt == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in all_rule_ids():
            kind = "project" if RULES[rule_id].project else "file"
            print(f"{rule_id}  [{kind}]  {RULES[rule_id].summary}")
        return 0

    def parse_rules(raw: str) -> "list[str] | None":
        ids = [part.strip().upper() for part in raw.split(",") if part.strip()]
        unknown = [rule_id for rule_id in ids if rule_id not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}; "
                  f"known: {', '.join(all_rule_ids())}")
            return None
        return ids

    select: Optional[list[str]] = None
    if args.select is not None:
        select = parse_rules(args.select)
        if select is None:
            return 2
    fix_suppress: Optional[list[str]] = None
    if args.fix_suppress is not None:
        fix_suppress = parse_rules(args.fix_suppress)
        if fix_suppress is None:
            return 2
    return run(
        args.paths or _default_paths(),
        fmt=args.format,
        select=select,
        baseline_path=_resolve_baseline(args),
        update_baseline=args.update_baseline,
        fix=args.fix,
        fix_suppress=fix_suppress,
    )
