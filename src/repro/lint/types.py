"""Datatypes shared by the simlint pass: findings, fixes and errors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Fix", "LintError", "Violation"]


@dataclass(frozen=True)
class Fix:
    """A mechanical single-line source edit that removes a finding.

    ``replace`` swaps ``[col, end_col)`` of ``line`` for ``replacement``
    (the SIM009 ``sorted(...)`` wrap); ``suppress`` appends an inline
    ``# simlint: disable=`` comment to ``line`` and ignores the column
    fields.  Spans are computed from the same source the rule parsed,
    so the fixer applies them positionally without re-analysis.
    """

    kind: str  # "replace" | "suppress"
    line: int  # 1-based
    col: int = 0  # 0-based, inclusive
    end_col: int = 0  # 0-based, exclusive
    replacement: str = ""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source location.

    Ordering is (path, line, col, rule) so reports are stable across
    runs and dict/set iteration orders.  An attached :class:`Fix` is
    advisory metadata and excluded from ordering/equality.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fix: Optional[Fix] = field(default=None, compare=False)

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (used by the ``json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fixable": self.fix is not None,
        }


@dataclass(frozen=True, order=True)
class LintError:
    """A file simlint could not analyse (unreadable or unparsable).

    Errors are reported separately from violations and make the CLI
    exit with status 2: a tree that cannot be parsed cannot be called
    clean.
    """

    path: str
    message: str

    def format(self) -> str:
        """``path: error: message`` — the text-reporter line."""
        return f"{self.path}: error: {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {"path": self.path, "error": self.message}
