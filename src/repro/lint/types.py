"""Datatypes shared by the simlint pass: findings and errors."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LintError", "Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, anchored to a source location.

    Ordering is (path, line, col, rule) so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (used by the ``json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class LintError:
    """A file simlint could not analyse (unreadable or unparsable).

    Errors are reported separately from violations and make the CLI
    exit with status 2: a tree that cannot be parsed cannot be called
    clean.
    """

    path: str
    message: str

    def format(self) -> str:
        """``path: error: message`` — the text-reporter line."""
        return f"{self.path}: error: {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {"path": self.path, "error": self.message}
