"""simlint — simulator-invariant static analysis for this repository.

The scientific claims of the reproduction rest on two disciplines that
ordinary testing cannot enforce:

* **determinism** — the engine orders events by (time, priority,
  insertion order) and promises bit-identical replays for one master
  seed, so any ambient entropy (``random``, ``time.time()``,
  unseeded ``np.random.*``) silently voids every benchmark;
* **statistical hygiene** — all stochastic draws flow through named
  :class:`~repro.sim.rng.StreamFactory` substreams so policy
  comparisons use common random numbers.

``simlint`` is an AST-based pass that walks the source tree and checks
those invariants *statically*.  SIM001–SIM006 are per-file syntactic
rules; SIM007–SIM012 are **whole-program** rules built on a project
symbol table (:mod:`repro.lint.symbols`) and call-reachability graph
(:mod:`repro.lint.graph`) seeded from the worker/hot-path entry
points.  Rules (see :mod:`repro.lint.rules` and
:mod:`repro.lint.project_rules`):

========  ==============================================================
SIM001    no ambient nondeterminism inside simulation packages
SIM002    no float ``==``/``!=`` against simulation-time expressions
SIM003    no re-entrant ``Simulator.run`` inside process generators
SIM004    complete type annotations on public ``repro.core``/``repro.sim`` API
SIM005    every ``__all__`` entry resolves to a real module attribute
SIM006    wall-clock reads are confined to ``repro.obs``
SIM007    no non-picklable/closure callables shipped to the pool
SIM008    no module-state mutation reachable from worker code
SIM009    no iteration over unordered sets on result-affecting paths
SIM010    every dataclass field folded into the content key it feeds
SIM011    ``emit_row`` rows match the registered obs event schemas
SIM012    no transitive wall-clock/env reads on the hot path
========  ==============================================================

Run it as ``python -m repro.lint src/repro`` or ``repro-sim lint``.
Suppress a finding on one line with ``# simlint: disable=SIM001`` (a
justification after the rule id is encouraged and enforced by review).
Adopt stricter rules on a legacy tree with ``--update-baseline`` (see
:mod:`repro.lint.baseline`); apply mechanical autofixes with ``--fix``;
emit SARIF for code scanning with ``--format sarif``.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint, write_baseline
from .config import DEFAULT_SCOPE, rule_applies
from .context import FileContext, build_context
from .fixes import apply_fixes, suppression_fixes
from .graph import CallGraph, build_call_graph, entry_points
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, Rule, all_rule_ids, rule
from .runner import LintResult, lint_file, lint_paths
from .symbols import Project, build_project
from .types import Fix, LintError, Violation

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_SCOPE",
    "FileContext",
    "Fix",
    "LintError",
    "LintResult",
    "Project",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_ids",
    "apply_fixes",
    "build_call_graph",
    "build_context",
    "build_project",
    "entry_points",
    "fingerprint",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "rule_applies",
    "suppression_fixes",
    "write_baseline",
]
