"""simlint — simulator-invariant static analysis for this repository.

The scientific claims of the reproduction rest on two disciplines that
ordinary testing cannot enforce:

* **determinism** — the engine orders events by (time, priority,
  insertion order) and promises bit-identical replays for one master
  seed, so any ambient entropy (``random``, ``time.time()``,
  unseeded ``np.random.*``) silently voids every benchmark;
* **statistical hygiene** — all stochastic draws flow through named
  :class:`~repro.sim.rng.StreamFactory` substreams so policy
  comparisons use common random numbers.

``simlint`` is an AST-based pass that walks the source tree and checks
those invariants *statically*.  Rules (see :mod:`repro.lint.rules`):

========  ==============================================================
SIM001    no ambient nondeterminism inside simulation packages
SIM002    no float ``==``/``!=`` against simulation-time expressions
SIM003    no re-entrant ``Simulator.run`` inside process generators
SIM004    complete type annotations on public ``repro.core``/``repro.sim`` API
SIM005    every ``__all__`` entry resolves to a real module attribute
========  ==============================================================

Run it as ``python -m repro.lint src/repro`` or ``repro-sim lint``.
Suppress a finding on one line with ``# simlint: disable=SIM001`` (a
justification after the rule id is encouraged and enforced by review).
"""

from __future__ import annotations

from .config import DEFAULT_SCOPE, rule_applies
from .context import FileContext, build_context
from .reporters import render_json, render_text
from .rules import RULES, Rule, all_rule_ids, rule
from .runner import LintResult, lint_file, lint_paths
from .types import LintError, Violation

__all__ = [
    "DEFAULT_SCOPE",
    "FileContext",
    "LintError",
    "LintResult",
    "RULES",
    "Rule",
    "Violation",
    "all_rule_ids",
    "build_context",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "rule",
    "rule_applies",
]
