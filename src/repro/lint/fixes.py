"""Applying autofixes: mechanical rewrites and suppression insertion.

Two fix kinds exist (see :class:`repro.lint.types.Fix`):

* ``replace`` — a rule attached a concrete single-line edit (today:
  SIM009's ``sorted(...)`` wrap).  Applied by ``--fix``.
* ``suppress`` — synthesised on demand by :func:`suppression_fixes`
  for ``--fix-suppress RULE,...``: appends an inline
  ``# simlint: disable=RULE -- TODO(justify)`` comment.  Opt-in and
  per-rule, because an autofixer that silences findings wholesale
  would defeat the linter; the TODO marker keeps the debt visible
  until a human replaces it with a real justification.

Edits are positional against the source the rules parsed; all fixes
for one file are applied bottom-up (descending line, then column) so
earlier edits never invalidate later spans.  Lines that already carry
a ``simlint:`` comment are left alone rather than risk corrupting an
existing suppression.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List

from .types import Fix, Violation

__all__ = ["apply_fixes", "suppression_fixes"]


def suppression_fixes(violations: Iterable[Violation],
                      rules: Iterable[str]) -> List[Violation]:
    """Clone ``violations`` of the given rules with ``suppress`` fixes.

    Violations already carrying a replace-fix keep it (a real fix beats
    a suppression); everything else in ``rules`` gets a suppression
    edit targeting its own line.
    """
    wanted = set(rules)
    out: List[Violation] = []
    for violation in violations:
        if violation.rule not in wanted or violation.fix is not None:
            out.append(violation)
            continue
        out.append(Violation(
            path=violation.path, line=violation.line, col=violation.col,
            rule=violation.rule, message=violation.message,
            fix=Fix(kind="suppress", line=violation.line),
        ))
    return out


def _apply_to_line(line: str, fixes: List[tuple[Fix, str]]) -> str:
    """Apply one line's fixes: replaces right-to-left, then suppression."""
    suppress_rules: List[str] = []
    replaces = []
    for fix, rule_id in fixes:
        if fix.kind == "suppress":
            suppress_rules.append(rule_id)
        elif fix.kind == "replace":
            replaces.append(fix)
    for fix in sorted(replaces, key=lambda f: f.col, reverse=True):
        if fix.end_col <= len(line):
            line = line[: fix.col] + fix.replacement + line[fix.end_col:]
    if suppress_rules and "simlint:" not in line:
        rules = ",".join(sorted(set(suppress_rules)))
        line = (line.rstrip("\n")
                + f"  # simlint: disable={rules} -- TODO(justify)")
    return line


def apply_fixes(violations: Iterable[Violation]) -> Dict[str, int]:
    """Write every attached fix to disk; returns path -> edits applied.

    Only violations with a ``fix`` participate.  Files are rewritten
    in one pass each, preserving their original line endings except on
    edited lines (which are normalised to ``\\n`` like the rest of the
    tree).
    """
    by_file: Dict[str, Dict[int, List[tuple[Fix, str]]]] = {}
    for violation in violations:
        if violation.fix is None:
            continue
        by_file.setdefault(violation.path, {}).setdefault(
            violation.fix.line, []).append((violation.fix, violation.rule))

    applied: Dict[str, int] = {}
    for path in sorted(by_file):
        source = Path(path).read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        count = 0
        for lineno, fixes in sorted(by_file[path].items(), reverse=True):
            index = lineno - 1
            if not 0 <= index < len(lines):
                continue
            line = lines[index]
            ending = "\n" if line.endswith("\n") else ""
            fixed = _apply_to_line(line.rstrip("\r\n"), fixes)
            if fixed != line.rstrip("\r\n"):
                lines[index] = fixed + ending
                count += len(fixes)
        if count:
            Path(path).write_text("".join(lines), encoding="utf-8")
            applied[path] = count
    return applied
