"""Command-line interface: ``repro-sim``.

Subcommands
-----------
``run``
    One open-system simulation at a target gross utilization.
``sweep``
    A response-time-vs-utilization curve for one configuration.
``maxutil``
    Constant-backlog estimation of the maximal utilization.
``trace``
    Generate the synthetic DAS1 log and write it in SWF.
``trace-info``
    Summarise an SWF trace file.
``experiment``
    Regenerate one of the paper's exhibits (table1..table3, fig1..fig7).
``lint``
    Run simlint, the simulator-invariant static-analysis pass.
``obs``
    Inspect observability artifacts: ``summary``, ``tail``,
    ``validate``, ``dash``, ``trace``, ``manifest``, ``profile``
    (see ``docs/observability.md``).
``serve``
    Run the persistent sweep service: an asyncio campaign server on a
    local Unix-domain socket (see ``docs/service.md``).
``submit``
    Submit a sweep to a running service and stream its results.
``attach``
    Reattach to a previously submitted campaign by key prefix.

Examples::

    repro-sim run --policy LS --limit 16 --utilization 0.5
    repro-sim sweep --policy GS --limit 24 --grid 0.2:0.8:0.1
    repro-sim sweep --policy GS --workers 4 --cache --progress
    repro-sim sweep --policy GS --workers 4 --cache --retries 2 --task-timeout 300
    repro-sim sweep --policy GS --workers 4 --resume
    repro-sim sweep --policy LS --obs --cache
    repro-sim experiment fig3 --workers 4 --cache
    repro-sim maxutil --policy GS --limit 16
    repro-sim trace --jobs 30000 --out das1.swf
    repro-sim experiment table2
    repro-sim lint src/repro
    repro-sim obs summary
    repro-sim obs tail .repro-obs/events/ab/abcd....jsonl -n 5
    repro-sim obs tail .repro-obs/events/ab/abcd....jsonl --follow
    repro-sim obs validate .repro-obs
    repro-sim obs dash --iterations 1
    repro-sim obs trace --out trace.json
    repro-sim serve --socket /tmp/repro.sock --fleet 4
    repro-sim submit --policy GS --grid 0.2:0.8:0.1 --socket /tmp/repro.sock
    repro-sim attach 9df5b409 --socket /tmp/repro.sock
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, Optional, Sequence

from repro.analysis import experiments, line_plot, tables
from repro.analysis.sweeps import sweep, utilization_grid
from repro.core import SimulationConfig, run_open_system
from repro.obs.gate import OBS_ENV
from repro.runner import (
    CACHE_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    WORKERS_ENV,
    CacheSpec,
)
from repro.metrics.saturation import estimate_maximal_utilization
from repro.sim import StreamFactory
from repro.workload import (
    JobFactory,
    WORKLOADS,
    das_t_900,
    generate_das_log,
    read_swf,
    summarize_log,
    write_swf,
)
from repro.workload import stats_model

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Processor co-allocation simulations (HPDC'03 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_args(p):
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for independent runs "
                            "(default $REPRO_WORKERS or 1; results are "
                            "identical at any worker count)")
        p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="reuse/store run results under .repro-cache "
                            "(default $REPRO_CACHE, off)")
        p.add_argument("--obs", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="write observability artifacts (event logs, "
                            "manifests) under $REPRO_OBS_DIR or "
                            ".repro-obs (default $REPRO_OBS, off); "
                            "results are byte-identical either way")
        p.add_argument("--retries", type=int, default=None, metavar="N",
                       help="re-execute a failing/crashing/timed-out "
                            "task up to N extra times with deterministic "
                            "backoff (default $REPRO_RETRIES or 0; "
                            "results are byte-identical regardless)")
        p.add_argument("--task-timeout", type=float, default=None,
                       metavar="S",
                       help="per-task wall-clock limit in seconds; a "
                            "stuck worker is terminated, replaced and "
                            "the task retried (default "
                            "$REPRO_TASK_TIMEOUT, none)")
        p.add_argument("--progress", action="store_true",
                       help="render a live per-task progress line on "
                            "stderr plus phase timers")

    def add_model_args(p):
        p.add_argument("--policy", default="GS",
                       choices=["GS", "LS", "LP", "SC"],
                       help="scheduling policy")
        p.add_argument("--limit", type=int, default=16,
                       choices=[16, 24, 32],
                       help="job-component-size limit")
        p.add_argument("--workload", default="das-s-128",
                       choices=sorted(WORKLOADS),
                       help="total-job-size distribution")
        p.add_argument("--unbalanced", action="store_true",
                       help="use the 40/20/20/20 local-queue routing")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--warmup", type=int, default=2_000,
                       help="warmup jobs discarded")
        p.add_argument("--measured", type=int, default=10_000,
                       help="jobs measured after warmup")

    run_p = sub.add_parser("run", help="one open-system simulation")
    add_model_args(run_p)
    run_p.add_argument("--utilization", type=float, default=0.5,
                       help="target offered gross utilization")

    sweep_p = sub.add_parser("sweep", help="response-vs-utilization curve")
    add_model_args(sweep_p)
    add_runner_args(sweep_p)
    sweep_p.add_argument("--grid", default="0.2:0.8:0.1",
                         help="utilization grid start:stop:step")
    sweep_p.add_argument("--plot", action="store_true",
                         help="also render an ASCII plot")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="save the sweep result as JSON")
    sweep_p.add_argument("--profile", action="store_true",
                         help="run under cProfile and print the "
                              "hottest functions afterwards")
    sweep_p.add_argument("--backend", default="scalar",
                         choices=["scalar", "batch", "auto"],
                         help="simulation engine: the scalar event "
                              "loop, the lockstep numpy batch "
                              "kernel (identical statistics, cached "
                              "under distinct keys; batch needs "
                              "numpy — pip install repro[batch]), or "
                              "auto to pick batch whenever numpy is "
                              "available and the campaign is wide "
                              "enough to benefit")
    sweep_p.add_argument("--replications", type=int, default=1,
                         metavar="N",
                         help="independent replications per grid "
                              "point (seeds seed, seed+1000, ...); "
                              "N>1 aggregates across-seed confidence "
                              "intervals, where the batch backend "
                              "advances all seeds in lockstep")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume an interrupted sweep: forces the "
                              "result cache on, reports how many grid "
                              "points the previous run completed, and "
                              "re-executes only the remainder (output "
                              "is byte-identical to an uninterrupted "
                              "run)")

    max_p = sub.add_parser("maxutil",
                           help="maximal utilization (constant backlog)")
    add_model_args(max_p)
    max_p.add_argument("--backlog", type=int, default=60)

    trace_p = sub.add_parser("trace", help="generate a synthetic DAS1 log")
    trace_p.add_argument("--jobs", type=int,
                         default=stats_model.LOG_NUM_JOBS)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument("--out", required=True, help="SWF output path")

    info_p = sub.add_parser("trace-info", help="summarise an SWF trace")
    info_p.add_argument("path", help="SWF file to read")

    exp_p = sub.add_parser("experiment",
                           help="regenerate one paper exhibit")
    exp_p.add_argument("name", choices=[
        "table1", "table2", "table3",
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    ])
    exp_p.add_argument("--scale", default=None, choices=["smoke", "quick", "full"])
    add_runner_args(exp_p)

    report_p = sub.add_parser(
        "report", help="run the full suite, write a Markdown report"
    )
    report_p.add_argument("--out", required=True, help="output .md path")
    report_p.add_argument("--scale", default=None,
                          choices=["smoke", "quick", "full"])
    report_p.add_argument("--sections", nargs="*", default=None,
                          help="section title prefixes to include")
    add_runner_args(report_p)

    sens_p = sub.add_parser(
        "sensitivity", help="one-factor-at-a-time sensitivity tornado"
    )
    sens_p.add_argument("--net-load", type=float, default=0.40,
                        help="fixed offered net utilization")
    sens_p.add_argument("--policy", default="LS",
                        choices=["GS", "LS", "LP"])
    sens_p.add_argument("--scale", default=None,
                        choices=["smoke", "quick", "full"])

    char_p = sub.add_parser(
        "characterize", help="characterise an SWF trace"
    )
    char_p.add_argument("path", help="SWF file to analyse")

    lint_p = sub.add_parser(
        "lint", help="simulator-invariant static analysis (simlint)"
    )
    lint_p.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    lint_p.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run")
    lint_p.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file of accepted findings")
    lint_p.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    lint_p.add_argument("--update-baseline", action="store_true",
                        help="record current findings as the baseline")
    lint_p.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes, then re-lint")
    lint_p.add_argument("--fix-suppress", default=None, metavar="RULES",
                        help="insert suppression comments for these rules")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")

    obs_p = sub.add_parser(
        "obs", help="inspect observability artifacts"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    obs_sum = obs_sub.add_parser(
        "summary", help="aggregate run manifests (or one event log)"
    )
    obs_sum.add_argument("--dir", default=None, metavar="PATH",
                         help="artifact root (default $REPRO_OBS_DIR "
                              "or .repro-obs)")
    obs_sum.add_argument("--log", default=None, metavar="PATH",
                         help="summarise one JSONL event log instead")
    obs_tail = obs_sub.add_parser(
        "tail", help="print the last events of a JSONL event log"
    )
    obs_tail.add_argument("log", help="event log path")
    obs_tail.add_argument("-n", "--events", type=int, default=10,
                          help="number of events (default 10)")
    obs_tail.add_argument("--kind", action="append", default=None,
                          metavar="KIND",
                          help="only this event kind (repeatable)")
    obs_tail.add_argument("--since", type=float, default=None,
                          metavar="T",
                          help="only events with t >= T")
    obs_tail.add_argument("--until", type=float, default=None,
                          metavar="T",
                          help="only events with t <= T")
    obs_tail.add_argument("--follow", action="store_true",
                          help="tail a live log as events are flushed "
                               "(stops when the log is finalized)")
    obs_tail.add_argument("--timeout", type=float, default=None,
                          metavar="S",
                          help="give up following after S seconds "
                               "(default: wait forever)")
    obs_val = obs_sub.add_parser(
        "validate", help="audit event logs against the event schemas"
    )
    obs_val.add_argument("target",
                         help="one JSONL event log, or an artifact "
                              "root whose logs are all audited")
    obs_dash = obs_sub.add_parser(
        "dash", help="live campaign dashboard (snapshot on non-TTY)"
    )
    obs_dash.add_argument("--dir", default=None, metavar="PATH",
                          help="artifact root (default $REPRO_OBS_DIR "
                               "or .repro-obs)")
    obs_dash.add_argument("--cache-dir", default=None, metavar="PATH",
                          help="result-cache root whose sweeps/ "
                               "manifests drive the campaign progress "
                               "bars (default .repro-cache when it "
                               "exists)")
    obs_dash.add_argument("--interval", type=float, default=1.0,
                          metavar="S",
                          help="refresh period in seconds (default 1)")
    obs_dash.add_argument("--iterations", type=int, default=None,
                          metavar="N",
                          help="stop after N frames (default: until "
                               "interrupted)")
    obs_dash.add_argument("--duration", type=float, default=None,
                          metavar="S",
                          help="stop after S seconds")
    obs_trace = obs_sub.add_parser(
        "trace", help="export spans as Chrome trace-event JSON "
                      "(Perfetto / chrome://tracing)"
    )
    obs_trace.add_argument("--dir", default=None, metavar="PATH",
                           help="artifact root (default "
                                "$REPRO_OBS_DIR or .repro-obs)")
    obs_trace.add_argument("--cache-dir", default=None, metavar="PATH",
                           help="result-cache root providing campaign "
                                "spans (default .repro-cache when it "
                                "exists)")
    obs_trace.add_argument("--out", default="trace.json",
                           metavar="PATH",
                           help="output path (default trace.json)")
    obs_man = obs_sub.add_parser(
        "manifest", help="show one run manifest by task key"
    )
    obs_man.add_argument("key", help="task key (or unique prefix)")
    obs_man.add_argument("--dir", default=None, metavar="PATH",
                         help="artifact root (default $REPRO_OBS_DIR "
                              "or .repro-obs)")
    obs_prof = obs_sub.add_parser(
        "profile", help="profile one run (cProfile hotspot table)"
    )
    add_model_args(obs_prof)
    obs_prof.add_argument("--utilization", type=float, default=0.5,
                          help="target offered gross utilization")
    obs_prof.add_argument("--top", type=int, default=20,
                          help="hotspot rows to print (default 20)")

    def add_socket_arg(p):
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="service socket path (default "
                            "$REPRO_SERVICE_SOCKET or "
                            ".repro-service.sock)")

    serve_p = sub.add_parser(
        "serve", help="persistent sweep service (campaign server)"
    )
    add_socket_arg(serve_p)
    serve_p.add_argument("--cache-dir", default=None, metavar="PATH",
                         help="result-cache root backing the service "
                              "(default .repro-cache); campaign "
                              "ledgers and all results live here, so "
                              "a restarted server resumes from it")
    serve_p.add_argument("--fleet", type=int, default=4, metavar="N",
                         help="concurrent engine executions across "
                              "all campaigns (default 4)")
    serve_p.add_argument("--task-workers", type=int, default=1,
                         metavar="N",
                         help="worker processes per task execution "
                              "(default 1: in-thread; >1 fans one "
                              "task's retries over a process pool)")
    serve_p.add_argument("--retries", type=int, default=None,
                         metavar="N",
                         help="per-task retry count for the fleet "
                              "(default $REPRO_RETRIES or 0)")
    serve_p.add_argument("--task-timeout", type=float, default=None,
                         metavar="S",
                         help="per-task wall-clock limit in seconds "
                              "(default $REPRO_TASK_TIMEOUT, none)")

    submit_p = sub.add_parser(
        "submit", help="submit a sweep to a running service"
    )
    add_model_args(submit_p)
    add_socket_arg(submit_p)
    submit_p.add_argument("--grid", default="0.2:0.8:0.1",
                          help="utilization grid start:stop:step")
    submit_p.add_argument("--backend", default="scalar",
                          choices=["scalar", "batch", "auto"],
                          help="simulation engine (same semantics as "
                               "'sweep --backend'; the service fuses "
                               "batch grids into lane-kernel calls)")
    submit_p.add_argument("--label", default=None,
                          help="campaign label (default: the policy "
                               "name, matching one-shot sweeps)")
    submit_p.add_argument("--stop-after", type=int, default=1,
                          metavar="N",
                          help="cut the curve after N saturated "
                               "points (default 1, the paper's "
                               "convention; 0 streams the full grid)")
    submit_p.add_argument("--json", metavar="PATH", default=None,
                          help="save the sweep result as JSON")

    attach_p = sub.add_parser(
        "attach", help="reattach to a submitted campaign by key prefix"
    )
    attach_p.add_argument("campaign",
                          help="campaign key (or unique prefix)")
    add_socket_arg(attach_p)
    return parser


def _config_from_args(args) -> SimulationConfig:
    weights = (stats_model.UNBALANCED_WEIGHTS if args.unbalanced
               else stats_model.BALANCED_WEIGHTS)
    kwargs = dict(
        policy=args.policy,
        component_limit=args.limit,
        routing_weights=weights,
        seed=args.seed,
        warmup_jobs=args.warmup,
        measured_jobs=args.measured,
    )
    if args.policy == "SC":
        kwargs.update(capacities=(stats_model.SINGLE_CLUSTER_SIZE,),
                      component_limit=None)
    return SimulationConfig(**kwargs)


def _factory_for(config: SimulationConfig, workload: str) -> JobFactory:
    return JobFactory(
        WORKLOADS[workload](), das_t_900(), config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )


def _cmd_run(args) -> int:
    config = _config_from_args(args)
    sizes = WORKLOADS[args.workload]()
    service = das_t_900()
    factory = _factory_for(config, args.workload)
    rate = factory.arrival_rate_for_gross_utilization(
        args.utilization, config.capacity
    )
    result = run_open_system(config, sizes, service, rate)
    r = result.report
    print(f"policy                {config.policy}")
    print(f"component-size limit  {config.component_limit}")
    print(f"offered gross util    {result.offered_gross_utilization:.3f}")
    print(f"measured gross util   {r.gross_utilization:.3f}")
    print(f"measured net util     {r.net_utilization:.3f}")
    print(f"mean response time    {r.mean_response:.1f} "
          f"± {r.response_ci_half_width:.1f} (95% CI)")
    print(f"mean jobs waiting     {r.mean_jobs_waiting:.1f}")
    print(f"completed jobs        {r.completed_jobs}")
    print(f"saturated             {'yes' if result.saturated else 'no'}")
    return 0


def _parse_grid(text: str) -> tuple[float, ...]:
    try:
        start, stop, step = (float(x) for x in text.split(":"))
    except ValueError:
        raise SystemExit(f"bad grid {text!r}; expected start:stop:step")
    return utilization_grid(start, stop, step)


@contextlib.contextmanager
def _progress_display(args, total: Optional[int] = None,
                      label: str = "") -> Iterator[None]:
    """Activate the live progress line while ``--progress`` is set."""
    if not getattr(args, "progress", False):
        yield
        return
    from repro.obs import progress as obs_progress

    display = obs_progress.ProgressDisplay(total=total, label=label)
    obs_progress.activate(display.on_task_event)
    try:
        yield
    finally:
        obs_progress.deactivate()
        display.close()


def _report_resume(args, config, sizes, grid) -> CacheSpec:
    """Handle ``sweep --resume``: force the cache on, report progress.

    Returns the cache spec the sweep should run with.  The campaign
    identity is recomputed from the command's own arguments, so
    ``--resume`` can never mix state across different sweeps — a
    changed grid, seed or policy is simply a fresh campaign.
    """
    from repro.analysis.sweeps import sweep_tasks
    from repro.runner import (
        campaign_key,
        campaign_progress,
        load_campaign,
        resolve_cache,
        task_keys,
    )
    from repro.sim.backend import resolve_backend

    if args.cache is False:
        raise SystemExit("--resume requires the result cache "
                         "(drop --no-cache)")
    # Honour an explicit $REPRO_CACHE directory; only when the
    # environment leaves the cache off is it forced to the default
    # location (resume without a cache is meaningless).
    store = resolve_cache(args.cache) or resolve_cache(True)
    # "auto" must resolve to the backend the sweep will actually run
    # with before keys are derived, or resume would look up a campaign
    # that never existed.
    backend = resolve_backend(getattr(args, "backend", "scalar"),
                              config, width=len(grid),
                              size_distribution=sizes)
    tasks = sweep_tasks(config, sizes, das_t_900(), grid, backend)
    keys = task_keys(tasks)
    manifest = load_campaign(store,
                             campaign_key("sweep", args.policy, keys))
    if manifest is None:
        print("resume: no previous state for this sweep; "
              "starting fresh")
        return store
    done = sum(1 for key in keys if store.contains(key))
    _, total = campaign_progress(store, manifest)
    print(f"resume: {done}/{total} grid points already completed; "
          f"re-executing {total - done}")
    return store


def _cmd_sweep(args) -> int:
    from repro.obs.timing import PhaseTimer

    config = _config_from_args(args)
    sizes = WORKLOADS[args.workload]()
    grid = _parse_grid(args.grid)
    if args.replications > 1:
        return _cmd_sweep_replicated(args, config, sizes, grid)
    timer = PhaseTimer()
    cache: CacheSpec = args.cache
    if args.resume:
        cache = _report_resume(args, config, sizes, grid)

    def simulate():
        with _progress_display(args, total=len(grid),
                               label=f"sweep {args.policy}"):
            with timer.phase("simulate"):
                return sweep(args.policy, config, sizes, das_t_900(),
                             utilizations=grid,
                             workers=args.workers, cache=cache,
                             backend=args.backend)

    hotspots = None
    if args.profile:
        from repro.obs.profiling import profile_call

        result, hotspots = profile_call(simulate)
    else:
        result = simulate()
    with timer.phase("render"):
        print(tables.render_sweeps(
            [result],
            title=f"{args.policy} L={args.limit} ({args.workload})"
        ))
        if args.plot:
            xs, ys = result.series()
            print(line_plot({result.label: (xs, ys)},
                            x_label="gross utilization",
                            y_label="mean response"))
    if args.json:
        with timer.phase("save"):
            from repro.analysis.io import save_sweep

            save_sweep(result, args.json)
        print(f"saved sweep to {args.json}")
    if hotspots is not None:
        print(hotspots)
    if args.progress:
        print(timer.render(), file=sys.stderr)
    return 0


def _cmd_sweep_replicated(args, config, sizes, grid) -> int:
    """``sweep --replications N``: aggregate a curve across seeds."""
    from repro.analysis.replications import replicate_sweep
    from repro.runner import resolve_cache

    cache: CacheSpec = args.cache
    if args.resume:
        # Campaign state lives in the per-task result cache; forcing it
        # on is all a replicated resume needs (every completed seed ×
        # grid-point run is fetched instead of re-simulated).
        cache = resolve_cache(args.cache) or resolve_cache(True)
        print("resume: result cache on; completed replication runs "
              "will be reused")
    result = replicate_sweep(args.policy, config, sizes, das_t_900(),
                             utilizations=grid,
                             replications=args.replications,
                             workers=args.workers, cache=cache,
                             backend=args.backend)
    title = (f"{args.policy} L={args.limit} ({args.workload}) — "
             f"{args.replications} replications [{args.backend}]")
    print(title)
    print(f"{'offered':>8} {'gross':>8} {'net':>8} "
          f"{'response':>10} {'ci95':>10} {'reps':>5}")
    for p in result.points:
        flag = " SAT" if p.any_saturated else ""
        print(f"{p.offered_gross:8.3f} {p.mean_gross_utilization:8.4f} "
              f"{p.mean_net_utilization:8.4f} {p.mean_response:10.2f} "
              f"{p.response_ci.half_width:10.2f} "
              f"{p.replications:5d}{flag}")
    if args.json:
        from repro.analysis.io import save_replicated_sweep

        save_replicated_sweep(result, args.json)
        print(f"saved replicated sweep to {args.json}")
    return 0


def _cmd_maxutil(args) -> int:
    from repro.analysis.theory import gross_net_ratio

    config = _config_from_args(args)
    sizes = WORKLOADS[args.workload]()
    ratio = (1.0 if config.component_limit is None
             else gross_net_ratio(sizes, config.component_limit,
                                  len(config.capacities)))
    result = estimate_maximal_utilization(
        config, sizes, das_t_900(), ratio,
        backlog=args.backlog, warmup_jobs=args.warmup,
        measured_jobs=args.measured,
    )
    print(f"policy                {config.policy}")
    print(f"component-size limit  {config.component_limit}")
    print(f"maximal gross util    {result.gross:.3f}")
    print(f"maximal net util      {result.net:.3f}")
    print(f"gross/net ratio       {result.gross_net_ratio:.4f}")
    return 0


def _cmd_trace(args) -> int:
    log = generate_das_log(seed=args.seed, num_jobs=args.jobs)
    count = write_swf(log, args.out)
    summary = summarize_log(log)
    print(f"wrote {count} jobs to {args.out}")
    print(f"mean size {summary.mean_size:.2f}, "
          f"mean runtime {summary.mean_runtime:.1f}s, "
          f"{summary.num_distinct_sizes} distinct sizes")
    return 0


def _cmd_trace_info(args) -> int:
    records = read_swf(args.path)
    s = summarize_log(records)
    print(f"jobs                 {s.num_jobs}")
    print(f"users                {s.num_users}")
    print(f"distinct sizes       {s.num_distinct_sizes}")
    print(f"mean size            {s.mean_size:.2f} (CV {s.cv_size:.2f})")
    print(f"mean runtime         {s.mean_runtime:.1f}s "
          f"(CV {s.cv_runtime:.2f})")
    print(f"power-of-two sizes   {s.power_of_two_fraction:.1%}")
    print(f"below 900s           {s.fraction_below_cutoff:.1%}")
    return 0


def _cmd_experiment(args) -> int:
    with _progress_display(args, label=f"experiment {args.name}"):
        return _run_experiment(args)


def _run_experiment(args) -> int:
    scale = experiments.get_scale(args.scale)
    name = args.name
    if name == "table1":
        print(tables.render_table1(
            experiments.table1_power_of_two_fractions(scale)))
    elif name == "table2":
        print(tables.render_table2(
            experiments.table2_component_fractions()))
    elif name == "table3":
        print(tables.render_table3(
            experiments.table3_maximal_utilization(scale)))
    elif name == "fig1":
        from repro.analysis import bar_chart

        data = experiments.fig1_size_density(scale)
        merged = {**data["powers"], **data["others"]}
        top = dict(sorted(merged.items(), key=lambda kv: -kv[1])[:20])
        print(bar_chart(top, title="Figure 1 — job-size density "
                                   "(20 most frequent sizes)"))
    elif name == "fig2":
        from repro.analysis import bar_chart

        data = experiments.fig2_service_density(scale, bin_width=60.0)
        print(bar_chart(data["bins"],
                        title="Figure 2 — service-time density "
                              f"(mean {data['mean']:.0f}s)"))
    elif name == "fig3":
        for limit in stats_model.SIZE_LIMITS:
            sweeps = experiments.fig3_policy_comparison(limit, scale=scale)
            print(tables.render_sweeps(
                sweeps, title=f"Figure 3 — L={limit}, balanced"))
            print()
    elif name == "fig4":
        print(tables.render_fig4(experiments.fig4_lp_saturation(
            scale=scale)))
    elif name == "fig5":
        print(tables.render_sweeps(
            experiments.fig5_total_size_limit(scale),
            title="Figure 5 — DAS-s-64 vs DAS-s-128 (L=16, balanced)"))
    elif name == "fig6":
        for policy in ("LS", "LP", "GS"):
            print(tables.render_sweeps(
                experiments.fig6_component_size_limits(policy,
                                                       scale=scale),
                title=f"Figure 6 — {policy} across size limits"))
            print()
    elif name == "fig7":
        for policy in ("LS", "LP", "GS"):
            print(tables.render_fig7(
                experiments.fig7_gross_vs_net(policy, 16, scale=scale)))
            print()
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    scale = experiments.get_scale(args.scale)
    with _progress_display(args, label="report"):
        rendered = generate_report(args.out, scale=scale,
                                   sections=args.sections)
    print(f"wrote {len(rendered)} sections to {args.out}:")
    for title in rendered:
        print(f"  - {title}")
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.analysis.sensitivity import (
        render_tornado,
        sensitivity_scan,
    )

    scale = experiments.get_scale(args.scale)
    results = sensitivity_scan(net_rho=args.net_load,
                               policy=args.policy, scale=scale)
    print(render_tornado(results))
    return 0


def _cmd_characterize(args) -> int:
    from repro.workload import characterize

    records = read_swf(args.path)
    print(characterize(records).summary())
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    argv.extend(["--format", args.format])
    if args.select:
        argv.extend(["--select", args.select])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.fix:
        argv.append("--fix")
    if args.fix_suppress:
        argv.extend(["--fix-suppress", args.fix_suppress])
    return lint_cli.main(argv)


def _default_cache_dir(explicit: Optional[str]) -> Optional[str]:
    """An explicit ``--cache-dir``, else ``.repro-cache`` when present."""
    if explicit is not None:
        return explicit
    from repro.runner.cache import DEFAULT_CACHE_DIR

    return DEFAULT_CACHE_DIR if os.path.isdir(DEFAULT_CACHE_DIR) \
        else None


def _cmd_obs(args) -> int:
    from repro.obs import cli as obs_cli

    if args.obs_command == "summary":
        return obs_cli.summary(directory=args.dir, log=args.log)
    if args.obs_command == "tail":
        return obs_cli.tail(args.log, n=args.events, kinds=args.kind,
                            since=args.since, until=args.until,
                            follow=args.follow, timeout=args.timeout)
    if args.obs_command == "validate":
        return obs_cli.validate(args.target)
    if args.obs_command == "dash":
        return obs_cli.dash(directory=args.dir,
                            cache_dir=_default_cache_dir(args.cache_dir),
                            interval=args.interval,
                            iterations=args.iterations,
                            duration=args.duration)
    if args.obs_command == "trace":
        return obs_cli.export_trace(
            directory=args.dir,
            cache_dir=_default_cache_dir(args.cache_dir),
            out_path=args.out)
    if args.obs_command == "manifest":
        return obs_cli.show_manifest(args.key, directory=args.dir)
    config = _config_from_args(args)
    return obs_cli.profile_run(
        config, WORKLOADS[args.workload](), das_t_900(),
        args.utilization, top=args.top,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.runner.cache import DEFAULT_CACHE_DIR
    from repro.service import ServiceServer, resolve_socket_path

    socket_path = resolve_socket_path(args.socket)
    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    server = ServiceServer(cache_dir, socket_path, fleet=args.fleet,
                           workers=args.task_workers)
    print(f"sweep service listening on {socket_path} "
          f"(cache {cache_dir}, fleet {args.fleet})", flush=True)
    asyncio.run(server.serve())
    print("sweep service stopped")
    return 0


def _print_campaign_summary(result) -> None:
    print(f"campaign {result.campaign[:12]}: "
          f"{result.statuses.count('computed')} computed, "
          f"{result.statuses.count('hit')} cached, "
          f"{result.statuses.count('deduped')} deduped")


def _cmd_submit(args) -> int:
    from repro.analysis.sweeps import SweepResult
    from repro.service import (
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
        resolve_socket_path,
        sweep_spec,
    )

    config = _config_from_args(args)
    grid = _parse_grid(args.grid)
    label = args.label or args.policy
    stop = args.stop_after if args.stop_after > 0 else None
    spec = sweep_spec(label, config, grid, workload=args.workload,
                      backend=args.backend, stop_after_saturation=stop)
    client = ServiceClient(resolve_socket_path(args.socket))
    try:
        result = client.run(spec)
    except ServiceConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_campaign_summary(result)
    sweep_result = SweepResult(label=label, config=config,
                               points=tuple(result.points))
    print(tables.render_sweeps(
        [sweep_result],
        title=f"{label} L={args.limit} ({args.workload}) [service]"))
    if args.json:
        from repro.analysis.io import save_sweep

        save_sweep(sweep_result, args.json)
        print(f"saved sweep to {args.json}")
    return 0


def _cmd_attach(args) -> int:
    from repro.service import (
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
        resolve_socket_path,
    )

    client = ServiceClient(resolve_socket_path(args.socket))
    try:
        result = client.run_attached(args.campaign)
    except ServiceConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _print_campaign_summary(result)
    # The original configuration lives server-side (in the ledger), so
    # reattachment renders the plain point rows.
    print(f"{'offered':>8} {'gross':>8} {'net':>8} "
          f"{'response':>10} {'ci95':>10}")
    for p in result.points:
        flag = " SAT" if p.saturated else ""
        print(f"{p.offered_gross:8.3f} {p.gross_utilization:8.4f} "
              f"{p.net_utilization:8.4f} {p.mean_response:10.2f} "
              f"{p.ci_half_width:10.2f}{flag}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "maxutil": _cmd_maxutil,
    "trace": _cmd_trace,
    "trace-info": _cmd_trace_info,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "sensitivity": _cmd_sensitivity,
    "characterize": _cmd_characterize,
    "lint": _cmd_lint,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "attach": _cmd_attach,
}


@contextlib.contextmanager
def _runner_environment(args) -> Iterator[None]:
    """Export ``--workers`` / ``--cache`` as the runner's env defaults.

    ``experiment`` and ``report`` reach sweeps through the experiment
    functions, whose ``workers``/``cache`` parameters default to the
    ``$REPRO_WORKERS`` / ``$REPRO_CACHE`` environment variables — so the
    flags are bridged through the environment for the duration of one
    command and restored afterwards (tests call :func:`main` in-process).
    """
    updates: dict[str, str] = {}
    if getattr(args, "workers", None) is not None:
        updates[WORKERS_ENV] = str(args.workers)
    if getattr(args, "cache", None) is not None:
        updates[CACHE_ENV] = "1" if args.cache else "0"
    if getattr(args, "obs", None) is not None:
        updates[OBS_ENV] = "1" if args.obs else "0"
    if getattr(args, "retries", None) is not None:
        updates[RETRIES_ENV] = str(args.retries)
    if getattr(args, "task_timeout", None) is not None:
        updates[TIMEOUT_ENV] = str(args.task_timeout)
    saved = {key: os.environ.get(key) for key in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    with _runner_environment(args):
        return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
