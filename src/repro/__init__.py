"""repro — trace-based simulation of processor co-allocation in multiclusters.

A production-quality reproduction of A.I.D. Bucur and D.H.J. Epema,
*Trace-Based Simulations of Processor Co-Allocation Policies in
Multiclusters* (HPDC 2003), built as four layers:

* :mod:`repro.sim` — a process-oriented discrete-event simulation engine
  (the CSIM substrate the authors used, rebuilt from scratch);
* :mod:`repro.workload` — the DAS-derived workload model: synthetic DAS1
  trace, the DAS-s-128 / DAS-s-64 / DAS-t-900 distributions, component
  splitting, SWF I/O, arrival generation;
* :mod:`repro.core` — the paper's contribution: the multicluster model,
  Worst-Fit placement of unordered requests, the GS / LS / LP
  co-allocation policies and the SC single-cluster reference;
* :mod:`repro.metrics` / :mod:`repro.analysis` — utilization accounting,
  saturation estimation, sweeps, and regeneration of every table and
  figure in the paper;
* :mod:`repro.runner` — deterministic parallel execution of independent
  runs over worker processes, with a content-hash-keyed on-disk result
  cache (``workers=N`` / ``cache=True`` on sweeps and replications,
  ``--workers`` / ``--cache`` on the CLI);
* :mod:`repro.lint` — simlint, the AST-based static-analysis pass that
  enforces the determinism and common-random-numbers invariants the
  benchmarks depend on (``python -m repro.lint`` / ``repro-sim lint``).

Quickstart::

    from repro import SimulationConfig, run_open_system
    from repro.workload import das_s_128, das_t_900, JobFactory
    from repro.sim import StreamFactory

    sizes, service = das_s_128(), das_t_900()
    config = SimulationConfig(policy="LS", component_limit=16)
    factory = JobFactory(sizes, service, 16, streams=StreamFactory(1))
    rate = factory.arrival_rate_for_gross_utilization(0.5, 128)
    result = run_open_system(config, sizes, service, rate)
    print(result.mean_response, result.gross_utilization)
"""

# The simulation layers need numpy (shipped under the [batch] extra);
# simlint is pure-AST and must stay importable without it, so the
# re-exports are gated rather than unconditional.  Any other
# ImportError propagates — only a missing numpy is a supported
# degraded mode.
try:
    from .core import (
        GSPolicy,
        Job,
        JobQueue,
        LPPolicy,
        LSPolicy,
        Multicluster,
        MulticlusterSimulation,
        OpenSystemResult,
        Policy,
        SCPolicy,
        SimulationConfig,
        run_constant_backlog,
        run_open_system,
    )
    from .metrics import MetricsRecorder, UtilizationReport
except ModuleNotFoundError as exc:  # pragma: no cover - no-numpy envs
    if (exc.name or "").partition(".")[0] != "numpy":
        raise
    NUMPY_AVAILABLE = False
else:
    NUMPY_AVAILABLE = True

__version__ = "1.0.0"

__all__ = [
    "__version__", "NUMPY_AVAILABLE",
    "SimulationConfig", "MulticlusterSimulation", "OpenSystemResult",
    "run_open_system", "run_constant_backlog",
    "Multicluster", "Job", "JobQueue",
    "Policy", "GSPolicy", "LSPolicy", "LPPolicy", "SCPolicy",
    "MetricsRecorder", "UtilizationReport",
]


def __getattr__(name: str) -> "object":
    """Explain the missing numeric stack instead of a bare NameError."""
    if name in __all__ and not NUMPY_AVAILABLE:
        raise ImportError(
            f"repro.{name} needs numpy, which is not installed; "
            "install the numeric stack with `pip install repro[batch]` "
            "(simlint and the pure-AST tooling work without it)"
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
