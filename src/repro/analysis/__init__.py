"""``repro.analysis`` — experiment definitions, sweeps, theory, rendering."""

from . import (
    ablations,
    crossings,
    experiments,
    figures,
    io,
    queueing,
    sensitivity,
    tables,
    theory,
)
from .ascii_plot import bar_chart, line_plot, sparkline
from .io import (
    load_replicated_sweep,
    load_report,
    load_sweep,
    save_replicated_sweep,
    save_report,
    save_sweep,
)
from .replications import (
    ReplicatedPoint,
    ReplicatedSweep,
    paired_comparison,
    replicate_sweep,
)
from .sweeps import (
    SweepPoint,
    SweepResult,
    compare,
    default_grid,
    rank_by_performance,
    sweep,
    utilization_grid,
)
from .theory import (
    gross_net_ratio,
    gross_net_ratios_table,
    mm1_response_time,
)

__all__ = [
    "experiments", "tables", "theory", "queueing", "ablations", "io",
    "figures", "sensitivity", "crossings",
    "sweep", "SweepPoint", "SweepResult", "compare", "default_grid",
    "utilization_grid", "rank_by_performance",
    "replicate_sweep", "paired_comparison", "ReplicatedSweep",
    "ReplicatedPoint",
    "save_sweep", "load_sweep", "save_report", "load_report",
    "save_replicated_sweep", "load_replicated_sweep",
    "gross_net_ratio", "gross_net_ratios_table", "mm1_response_time",
    "line_plot", "bar_chart", "sparkline",
]
