"""One-factor-at-a-time sensitivity analysis.

Which modelling choices actually move the results?  The scan perturbs
one factor at a time around the paper's base case (LS, L=16, balanced,
extension 1.25, 4x32) and records the response time at a fixed offered
*net* load — net, so that changing the extension factor or the split
does not silently change the amount of useful work offered.  The output
is a tornado-style table: factors sorted by their response-time swing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import SimulationConfig, run_open_system
from repro.sim.rng import StreamFactory
from repro.workload import JobFactory, das_s_64, das_s_128, das_t_900
from repro.workload import stats_model

from .experiments import Scale, get_scale

__all__ = ["SensitivityResult", "sensitivity_scan", "BASE_FACTORS"]


@dataclass(frozen=True)
class SensitivityResult:
    """One factor's scan outcome."""

    factor: str
    values: tuple
    responses: tuple[float, ...]
    base_response: float

    @property
    def swing(self) -> float:
        """max − min response across the factor's values."""
        return max(self.responses) - min(self.responses)

    @property
    def relative_swing(self) -> float:
        """Swing relative to the base response."""
        if self.base_response == 0:
            return float("inf")
        return self.swing / self.base_response


def _run(config: SimulationConfig, sizes, service,
         net_rho: float) -> float:
    factory = JobFactory(
        sizes, service, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    rate = net_rho * config.capacity / factory.expected_net_work()
    return run_open_system(config, sizes, service, rate).mean_response


#: factor name → (values, config transformer or workload marker).
BASE_FACTORS: dict[str, tuple] = {
    "component_limit": ((16, 24, 32),
                        lambda cfg, v: replace(cfg, component_limit=v)),
    "extension_factor": ((1.0, 1.25, 1.5),
                         lambda cfg, v: replace(cfg,
                                                extension_factor=v)),
    "routing": (("balanced", "unbalanced"),
                lambda cfg, v: replace(
                    cfg,
                    routing_weights=(
                        stats_model.BALANCED_WEIGHTS if v == "balanced"
                        else stats_model.UNBALANCED_WEIGHTS
                    ),
                )),
    "placement": (("worst-fit", "first-fit", "best-fit"),
                  lambda cfg, v: replace(cfg, placement=v)),
    "cluster_shape": ((("4x32"), ("2x64"), ("8x16")),
                      lambda cfg, v: replace(
                          cfg,
                          capacities={
                              "4x32": (32,) * 4,
                              "2x64": (64,) * 2,
                              "8x16": (16,) * 8,
                          }[v],
                          routing_weights={
                              "4x32": (0.25,) * 4,
                              "2x64": (0.5,) * 2,
                              "8x16": (0.125,) * 8,
                          }[v],
                      )),
    "size_distribution": (("das-s-128", "das-s-64"), None),
}


def sensitivity_scan(net_rho: float = 0.40,
                     policy: str = "LS",
                     scale: Optional[Scale] = None,
                     factors: Optional[Sequence[str]] = None,
                     ) -> list[SensitivityResult]:
    """Scan each factor around the base case; sorted by swing (desc).

    The base case is the paper's: ``policy`` (LS), L=16, balanced
    queues, Worst Fit, extension 1.25, 4×32 clusters, DAS-s-128.
    """
    scale = scale or get_scale()
    service = das_t_900()
    base_config = scale.config(policy, 16)
    base_response = _run(base_config, das_s_128(), service, net_rho)

    selected = factors if factors is not None else list(BASE_FACTORS)
    results = []
    for name in selected:
        values, transform = BASE_FACTORS[name]
        responses = []
        for value in values:
            if name == "size_distribution":
                sizes = das_s_128() if value == "das-s-128" else das_s_64()
                responses.append(
                    _run(base_config, sizes, service, net_rho)
                )
            else:
                cfg = transform(base_config, value)
                responses.append(
                    _run(cfg, das_s_128(), service, net_rho)
                )
        results.append(SensitivityResult(
            factor=name, values=tuple(values),
            responses=tuple(responses), base_response=base_response,
        ))
    results.sort(key=lambda r: -r.swing)
    return results


def render_tornado(results: Sequence[SensitivityResult]) -> str:
    """Text tornado table (largest swing first)."""
    lines = [
        "Sensitivity scan (one factor at a time; response at fixed "
        "offered net load)",
        f"{'factor':<18} {'swing':>8} {'rel':>7}  values -> responses",
    ]
    for r in results:
        pairs = ", ".join(
            f"{v}={resp:.0f}" for v, resp in zip(r.values, r.responses)
        )
        lines.append(
            f"{r.factor:<18} {r.swing:>8.0f} {r.relative_swing:>6.1%}  "
            f"{pairs}"
        )
    return "\n".join(lines)
