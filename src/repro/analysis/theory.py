"""Analytic results about the model (paper §4).

The central closed-form result: since job sizes, service times and
arrival times are mutually independent, the ratio between the gross and
the net utilization of *any* scheduling policy is a property of the
workload alone:

    ratio(L) = E[size · ext(size)] / E[size]

with ext(size) = 1.25 if the job is split into more than one component
under limit L, else 1.  The paper quotes this ratio for the DAS-s-128
distribution at the three component-size limits; our reconstruction gives
1.2211 / 1.1652 / 1.1543 (L = 16 / 24 / 32), matching the utilization
pairs printed in the paper's Figure 4 (0.552/0.453 → 1.219,
0.463/0.395 → 1.172, 0.544/0.469 → 1.160) to within half a percent.

Also provided: offered-load algebra and an M/M/1 reference used by the
test suite to cross-validate the whole engine/policy/metrics stack.
"""

from __future__ import annotations

import numpy as np

from repro.sim.distributions import DiscreteEmpirical
from repro.workload import stats_model
from repro.workload.splitting import num_components

__all__ = [
    "gross_net_ratio",
    "gross_net_ratios_table",
    "offered_gross_utilization",
    "arrival_rate_for_utilization",
    "mm1_response_time",
    "weighted_extension",
]


def weighted_extension(size_distribution: DiscreteEmpirical, limit: int,
                       clusters: int = stats_model.NUM_CLUSTERS,
                       extension_factor: float = stats_model.EXTENSION_FACTOR,
                       ) -> float:
    """E[size · ext(size)] under component-size limit ``limit``."""
    sizes = size_distribution.support

    def weighted(values: np.ndarray) -> np.ndarray:
        multi = np.array([
            num_components(int(s), limit, clusters) > 1 for s in values
        ])
        return values * np.where(multi, extension_factor, 1.0)

    del sizes
    return size_distribution.expectation(weighted)


def gross_net_ratio(size_distribution: DiscreteEmpirical, limit: int,
                    clusters: int = stats_model.NUM_CLUSTERS,
                    extension_factor: float = stats_model.EXTENSION_FACTOR,
                    ) -> float:
    """Gross/net utilization ratio of the workload (policy-independent)."""
    return (
        weighted_extension(size_distribution, limit, clusters,
                           extension_factor)
        / size_distribution.mean
    )


def gross_net_ratios_table(size_distribution: DiscreteEmpirical,
                           limits=stats_model.SIZE_LIMITS,
                           ) -> dict[int, float]:
    """The §4 ratios for each component-size limit."""
    return {L: gross_net_ratio(size_distribution, L) for L in limits}


def offered_gross_utilization(rate: float, mean_weighted_size: float,
                              mean_service: float, capacity: int) -> float:
    """λ · E[size·ext] · E[service] / capacity."""
    return rate * mean_weighted_size * mean_service / capacity


def arrival_rate_for_utilization(rho: float, mean_weighted_size: float,
                                 mean_service: float,
                                 capacity: int) -> float:
    """Invert :func:`offered_gross_utilization` for λ."""
    if rho <= 0:
        raise ValueError(f"utilization must be positive, got {rho!r}")
    return rho * capacity / (mean_weighted_size * mean_service)


def mm1_response_time(rho: float, mean_service: float = 1.0) -> float:
    """M/M/1 mean response time — the engine cross-validation target."""
    if not 0 < rho < 1:
        raise ValueError(f"need 0 < rho < 1, got {rho!r}")
    return mean_service / (1.0 - rho)
