"""Curve interpolation and crossover detection between sweeps.

The paper's comparisons are read off curves ("LS comes close to SC",
"LP beats GS under DAS-s-64").  This module makes those readings
precise: linear interpolation of a response curve at any utilization,
and detection of the utilization where one curve crosses another —
with the convention that response curves are compared on their common
stable range.
"""

from __future__ import annotations

import math
from typing import Optional

from .sweeps import SweepResult

__all__ = ["interpolate_response", "crossover_utilization",
           "dominance_interval"]


def _stable_series(sweep: SweepResult,
                   axis: str) -> tuple[list[float], list[float]]:
    points = sorted(sweep.stable_points,
                    key=lambda p: getattr(p, axis))
    xs = [getattr(p, axis) for p in points]
    ys = [p.mean_response for p in points]
    return xs, ys


def interpolate_response(sweep: SweepResult, utilization: float,
                         axis: str = "gross_utilization"
                         ) -> Optional[float]:
    """Linearly interpolated mean response at ``utilization``.

    Returns ``None`` outside the sweep's stable range (no
    extrapolation — responses diverge at the range's edge, so
    extrapolation would be fiction).
    """
    xs, ys = _stable_series(sweep, axis)
    if len(xs) < 2 or not xs[0] <= utilization <= xs[-1]:
        return None
    for i in range(1, len(xs)):
        if utilization <= xs[i]:
            x0, x1 = xs[i - 1], xs[i]
            y0, y1 = ys[i - 1], ys[i]
            if x1 == x0:
                return y0
            t = (utilization - x0) / (x1 - x0)
            return y0 + t * (y1 - y0)
    return ys[-1]  # pragma: no cover - loop always returns


def crossover_utilization(a: SweepResult, b: SweepResult,
                          axis: str = "gross_utilization",
                          samples: int = 200) -> Optional[float]:
    """Utilization where curve ``a`` stops being faster than ``b``.

    Scans the common stable range; returns the first utilization at
    which the sign of (response_a − response_b) flips, linearly
    refined, or ``None`` if one curve dominates throughout (or the
    ranges do not overlap).
    """
    ax, _ = _stable_series(a, axis)
    bx, _ = _stable_series(b, axis)
    if len(ax) < 2 or len(bx) < 2:
        return None
    lo = max(ax[0], bx[0])
    hi = min(ax[-1], bx[-1])
    if hi <= lo:
        return None

    def diff(u: float) -> Optional[float]:
        ra = interpolate_response(a, u, axis)
        rb = interpolate_response(b, u, axis)
        if ra is None or rb is None:
            return None
        return ra - rb

    previous_u, previous_d = None, None
    for i in range(samples + 1):
        u = lo + (hi - lo) * i / samples
        d = diff(u)
        if d is None:
            continue
        if previous_d is not None and previous_d * d < 0:
            # Sign change: refine linearly.
            t = abs(previous_d) / (abs(previous_d) + abs(d))
            return previous_u + t * (u - previous_u)
        if d != 0:
            previous_u, previous_d = u, d
    return None


def dominance_interval(a: SweepResult, b: SweepResult,
                       axis: str = "gross_utilization",
                       samples: int = 200
                       ) -> tuple[float, Optional[float]]:
    """Fraction of the common range where ``a`` is faster, and the
    crossover (if any).

    Returns ``(fraction_a_faster, crossover)``; fraction is nan when
    the ranges do not overlap.
    """
    ax, _ = _stable_series(a, axis)
    bx, _ = _stable_series(b, axis)
    if len(ax) < 2 or len(bx) < 2:
        return (math.nan, None)
    lo = max(ax[0], bx[0])
    hi = min(ax[-1], bx[-1])
    if hi <= lo:
        return (math.nan, None)
    faster = total = 0
    for i in range(samples + 1):
        u = lo + (hi - lo) * i / samples
        ra = interpolate_response(a, u, axis)
        rb = interpolate_response(b, u, axis)
        if ra is None or rb is None:
            continue
        total += 1
        if ra < rb:
            faster += 1
    fraction = faster / total if total else math.nan
    return (fraction, crossover_utilization(a, b, axis, samples))
