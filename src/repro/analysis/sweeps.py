"""Arrival-rate sweeps producing response-time-vs-utilization curves.

A *sweep* runs one configuration at a grid of offered gross utilizations
and collects the measured (utilization, mean response) points — one curve
of the paper's Figures 3, 5, 6 and 7.  Sweeps stop early once a run
saturates (the paper's curves end at the policy's maximal utilization;
points beyond it are meaningless for FCFS queues whose backlog grows
without bound).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import (
    OpenSystemResult,
    SimulationConfig,
    run_open_system,
)
from repro.sim.rng import StreamFactory
from repro.workload.generator import JobFactory

__all__ = ["SweepPoint", "SweepResult", "sweep", "default_grid"]


def default_grid(start: float = 0.2, stop: float = 0.85,
                 step: float = 0.05) -> tuple[float, ...]:
    """The default offered-gross-utilization grid."""
    points = []
    u = start
    while u <= stop + 1e-9:
        points.append(round(u, 10))
        u += step
    return tuple(points)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a response-time curve."""

    offered_gross: float
    gross_utilization: float
    net_utilization: float
    mean_response: float
    ci_half_width: float
    saturated: bool

    @classmethod
    def from_result(cls, result: OpenSystemResult) -> "SweepPoint":
        return cls(
            offered_gross=result.offered_gross_utilization,
            gross_utilization=result.gross_utilization,
            net_utilization=result.net_utilization,
            mean_response=result.mean_response,
            ci_half_width=result.report.response_ci_half_width,
            saturated=result.saturated,
        )


@dataclass(frozen=True)
class SweepResult:
    """A labelled curve: one configuration across the utilization grid."""

    label: str
    config: SimulationConfig
    points: tuple[SweepPoint, ...]

    @property
    def stable_points(self) -> tuple[SweepPoint, ...]:
        """Points before saturation."""
        return tuple(p for p in self.points if not p.saturated)

    @property
    def max_stable_utilization(self) -> float:
        """Highest measured gross utilization among stable points."""
        stable = self.stable_points
        return max((p.gross_utilization for p in stable), default=0.0)

    def series(self, x: str = "gross_utilization",
               y: str = "mean_response") -> tuple[list[float], list[float]]:
        """(xs, ys) arrays for plotting/tabulation."""
        xs = [getattr(p, x) for p in self.points]
        ys = [getattr(p, y) for p in self.points]
        return xs, ys

    def response_at(self, gross_utilization: float,
                    tolerance: float = 0.03,
                    axis: str = "gross_utilization") -> Optional[float]:
        """Mean response of the point nearest a target utilization.

        ``axis`` selects the matching coordinate (measured gross by
        default; ``"offered_gross"`` matches by offered load).
        """
        best, dist = None, tolerance
        for p in self.points:
            d = abs(getattr(p, axis) - gross_utilization)
            if d <= dist:
                best, dist = p, d
        return best.mean_response if best else None


def sweep(label: str, config: SimulationConfig, size_distribution,
          service_distribution,
          utilizations: Sequence[float] = (),
          stop_after_saturation: int = 1) -> SweepResult:
    """Run ``config`` across a utilization grid.

    Parameters
    ----------
    stop_after_saturation:
        How many saturated points to keep before stopping the sweep
        (1 reproduces the paper's curves, which end just past the knee).
    """
    if not utilizations:
        utilizations = default_grid()
    factory = JobFactory(
        size_distribution, service_distribution, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    points: list[SweepPoint] = []
    saturated_seen = 0
    for rho in utilizations:
        rate = factory.arrival_rate_for_gross_utilization(
            rho, config.capacity
        )
        result = run_open_system(config, size_distribution,
                                 service_distribution, rate)
        points.append(SweepPoint.from_result(result))
        if result.saturated:
            saturated_seen += 1
            if saturated_seen >= stop_after_saturation:
                break
    return SweepResult(label=label, config=config, points=tuple(points))


def compare(sweeps: Sequence[SweepResult],
            at_utilization: float) -> dict[str, Optional[float]]:
    """Mean response of each sweep at (approximately) one utilization."""
    return {s.label: s.response_at(at_utilization) for s in sweeps}


def rank_by_performance(sweeps: Sequence[SweepResult]) -> list[str]:
    """Labels ordered best-first, the paper's legend convention.

    Performance = maximal stable utilization bucketed to 0.05 (grid-
    and noise-insensitive); ties broken by the mean response at the
    highest *offered* load common to all sweeps — under common random
    numbers the response depth there separates policies even when they
    all saturate between the same two grid points.
    """
    if not sweeps:
        return []
    common_offered = min(
        max((p.offered_gross for p in s.points), default=0.0)
        for s in sweeps
    )

    def key(s: SweepResult):
        bucket = round(s.max_stable_utilization / 0.05)
        resp = s.response_at(common_offered, tolerance=0.06,
                             axis="offered_gross")
        return (-bucket, resp if resp is not None else float("inf"))

    return [s.label for s in sorted(sweeps, key=key)]


def with_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
    """A copy of ``config`` with a different seed (replication helper)."""
    return replace(config, seed=seed)
