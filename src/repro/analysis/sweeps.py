"""Arrival-rate sweeps producing response-time-vs-utilization curves.

A *sweep* runs one configuration at a grid of offered gross utilizations
and collects the measured (utilization, mean response) points — one curve
of the paper's Figures 3, 5, 6 and 7.  Sweeps stop early once a run
saturates (the paper's curves end at the policy's maximal utilization;
points beyond it are meaningless for FCFS queues whose backlog grows
without bound).

Grid points are independent simulations, so a sweep can fan them out
over worker processes (``workers=N``) and/or fetch them from the
on-disk result cache (``cache=True``); see :mod:`repro.runner` and
``docs/parallel.md``.  Parallel execution proceeds in chunks of
``workers`` grid points so the early-stop-on-saturation behaviour — and
therefore the returned curve — is byte-identical to a serial run.

Under ``backend="batch"`` (or ``"auto"`` resolving to it) the whole
grid instead runs as *fused lanes* of one lockstep kernel call
(:func:`~repro.runner.fused.execute_fused`): every grid point is a
lane with its own arrival rate, finished lanes retire early and their
slots refill from the remaining grid.  Each point is still
checkpointed under its own task key, and the returned curve is
byte-identical to the scalar engine's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import SimulationConfig
from repro.runner import (
    CacheSpec,
    RetryBudget,
    RetryPolicy,
    RunTask,
    begin_campaign,
    execute,
    execute_fused,
    finish_campaign,
    fused_eligible,
    resolve_cache,
    resolve_retry,
    resolve_workers,
    task_key,
)
from repro.sim.backend import resolve_backend

from .points import SweepPoint

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep",
    "sweep_tasks",
    "default_grid",
    "utilization_grid",
]


def utilization_grid(start: float, stop: float,
                     step: float) -> tuple[float, ...]:
    """An inclusive arithmetic grid computed by index.

    ``start + i*step`` avoids the float-accumulation drift of repeated
    ``u += step`` (which can drop or duplicate the endpoint); the
    tolerance for including ``stop`` is relative to the step size.
    """
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step!r}")
    count = int(math.floor((stop - start) / step + 1e-9)) + 1
    return tuple(round(start + i * step, 10) for i in range(max(count, 0)))


def default_grid(start: float = 0.2, stop: float = 0.85,
                 step: float = 0.05) -> tuple[float, ...]:
    """The default offered-gross-utilization grid."""
    return utilization_grid(start, stop, step)


@dataclass(frozen=True)
class SweepResult:
    """A labelled curve: one configuration across the utilization grid."""

    label: str
    config: SimulationConfig
    points: tuple[SweepPoint, ...]

    @property
    def stable_points(self) -> tuple[SweepPoint, ...]:
        """Points before saturation."""
        return tuple(p for p in self.points if not p.saturated)

    @property
    def max_stable_utilization(self) -> float:
        """Highest measured gross utilization among stable points."""
        stable = self.stable_points
        return max((p.gross_utilization for p in stable), default=0.0)

    def series(self, x: str = "gross_utilization",
               y: str = "mean_response") -> tuple[list[float], list[float]]:
        """(xs, ys) arrays for plotting/tabulation."""
        xs = [getattr(p, x) for p in self.points]
        ys = [getattr(p, y) for p in self.points]
        return xs, ys

    def response_at(self, gross_utilization: float,
                    tolerance: float = 0.03,
                    axis: str = "gross_utilization") -> Optional[float]:
        """Mean response of the point nearest a target utilization.

        ``axis`` selects the matching coordinate (measured gross by
        default; ``"offered_gross"`` matches by offered load).
        """
        best, dist = None, tolerance
        for p in self.points:
            d = abs(getattr(p, axis) - gross_utilization)
            if d <= dist:
                best, dist = p, d
        return best.mean_response if best else None


def sweep_tasks(config: SimulationConfig, size_distribution,
                service_distribution,
                utilizations: Sequence[float],
                backend: str = "scalar") -> list[RunTask]:
    """The full planned task list of a sweep, in grid order.

    Shared by :func:`sweep` and the CLI's ``--resume`` reporting so
    both derive the identical campaign identity (including the
    backend, which is part of every non-scalar task key).
    """
    return [
        RunTask(config, size_distribution, service_distribution, rho,
                backend=backend)
        for rho in utilizations
    ]


def sweep(label: str, config: SimulationConfig, size_distribution,
          service_distribution,
          utilizations: Sequence[float] = (),
          stop_after_saturation: int = 1,
          *,
          workers: Optional[int] = None,
          cache: CacheSpec = None,
          retry: Optional[RetryPolicy] = None,
          backend: str = "scalar") -> SweepResult:
    """Run ``config`` across a utilization grid.

    Parameters
    ----------
    stop_after_saturation:
        How many saturated points to keep before stopping the sweep
        (1 reproduces the paper's curves, which end just past the knee).
    workers:
        Worker processes to fan grid points out over (default 1, or
        ``$REPRO_WORKERS``).  The grid is executed in chunks of
        ``workers`` points; points past the early-stop threshold are
        discarded, so the curve is identical at every worker count.
    cache:
        Result cache: an explicit :class:`~repro.runner.ResultCache`,
        ``True``/``False`` to force the default cache on or off, or
        ``None`` to defer to ``$REPRO_CACHE``.  With a cache active the
        sweep also maintains a campaign manifest
        (:mod:`repro.runner.campaign`), so an interrupted run resumes
        from the last completed grid point when re-invoked.
    retry:
        Fault-tolerance posture for the underlying tasks (default:
        fail fast, or the ``$REPRO_RETRIES`` / ``$REPRO_TASK_TIMEOUT``
        environment defaults).  The ``retry_budget`` is shared across
        all of the sweep's chunks, so it bounds the campaign's total
        retries rather than resetting every ``workers`` grid points.
        Retries, timeouts and worker replacement never change the
        curve — a re-executed task is the same pure function of the
        same inputs.
    backend:
        Simulation engine: ``"scalar"`` (default), ``"batch"`` (the
        lockstep lane kernel — statistically identical, cached under
        distinct keys), or ``"auto"`` (batch when numpy is available
        and the grid is wide enough; see
        :func:`~repro.sim.backend.resolve_backend`).  The batch path
        fuses the whole grid into one kernel call when neither fault
        injection nor observability is armed; like the ``workers > 1``
        chunking, it runs grid points past the early-stop threshold
        speculatively (they are cached but discarded from the curve),
        so the returned curve is byte-identical to a serial scalar
        sweep.
    """
    if not utilizations:
        utilizations = default_grid()
    backend = resolve_backend(backend, config, width=len(utilizations),
                              size_distribution=size_distribution)
    workers = resolve_workers(workers)
    store = resolve_cache(cache)
    policy = resolve_retry(retry)
    budget = RetryBudget(policy.retry_budget)
    planned = sweep_tasks(config, size_distribution,
                          service_distribution, utilizations, backend)
    manifest = begin_campaign("sweep", label, planned, store)
    points: list[SweepPoint] = []
    saturated_seen = 0
    if backend == "batch" and fused_eligible():
        # resolve_cache(None) would re-read the environment, so a
        # resolved "no cache" is forwarded as an explicit False.
        fused = execute_fused(
            planned, cache=store if store is not None else False)
        for task in planned:
            point = fused[task_key(task)]
            points.append(point)
            if point.saturated:
                saturated_seen += 1
                if saturated_seen >= stop_after_saturation:
                    break
    else:
        for chunk_start in range(0, len(planned), workers):
            chunk = planned[chunk_start:chunk_start + workers]
            # The resolved retry budget is shared across chunks so it
            # is campaign-wide, not per chunk.
            for point in execute(chunk, workers=workers,
                                 cache=store if store is not None else False,
                                 retry=policy, budget=budget):
                points.append(point)
                if point.saturated:
                    saturated_seen += 1
                    if saturated_seen >= stop_after_saturation:
                        break
            if saturated_seen >= stop_after_saturation:
                break
    finish_campaign(manifest, store, points=len(points))
    return SweepResult(label=label, config=config, points=tuple(points))


def compare(sweeps: Sequence[SweepResult],
            at_utilization: float) -> dict[str, Optional[float]]:
    """Mean response of each sweep at (approximately) one utilization."""
    return {s.label: s.response_at(at_utilization) for s in sweeps}


def rank_by_performance(sweeps: Sequence[SweepResult]) -> list[str]:
    """Labels ordered best-first, the paper's legend convention.

    Performance = maximal stable utilization bucketed to 0.05 (grid-
    and noise-insensitive); ties broken by the mean response at the
    highest *offered* load common to all sweeps — under common random
    numbers the response depth there separates policies even when they
    all saturate between the same two grid points.
    """
    if not sweeps:
        return []
    common_offered = min(
        max((p.offered_gross for p in s.points), default=0.0)
        for s in sweeps
    )

    def key(s: SweepResult):
        bucket = round(s.max_stable_utilization / 0.05)
        resp = s.response_at(common_offered, tolerance=0.06,
                             axis="offered_gross")
        return (-bucket, resp if resp is not None else float("inf"))

    return [s.label for s in sorted(sweeps, key=key)]


def with_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
    """A copy of ``config`` with a different seed (replication helper)."""
    return replace(config, seed=seed)
