"""Independent replications: across-run confidence intervals.

Batch means (within one run) handle autocorrelation but share one
warmup; *independent replications* — the same configuration under
different master seeds — give the textbook-clean confidence interval
for steady-state means and a variance estimate that includes run-to-run
warmup bias.  The harness replicates whole sweeps, so a curve carries a
CI at every utilization point, and policy comparisons can report
paired (common-random-number) differences per seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import SimulationConfig
from repro.sim.stats import ConfidenceInterval, Tally, student_t_quantile

from .sweeps import SweepResult, sweep

__all__ = [
    "ReplicatedPoint",
    "ReplicatedSweep",
    "replicate_sweep",
    "paired_comparison",
]


@dataclass(frozen=True)
class ReplicatedPoint:
    """One utilization point aggregated over replications."""

    offered_gross: float
    mean_response: float
    response_ci: ConfidenceInterval
    mean_gross_utilization: float
    mean_net_utilization: float
    replications: int
    any_saturated: bool


@dataclass(frozen=True)
class ReplicatedSweep:
    """A curve with across-replication confidence intervals."""

    label: str
    config: SimulationConfig
    points: tuple[ReplicatedPoint, ...]
    seeds: tuple[int, ...]

    def series(self) -> tuple[list[float], list[float]]:
        """(utilization, mean response) arrays."""
        return (
            [p.mean_gross_utilization for p in self.points],
            [p.mean_response for p in self.points],
        )


def _aggregate(offered: float, results: Sequence, level: float
               ) -> ReplicatedPoint:
    responses = Tally()
    gross = Tally()
    net = Tally()
    saturated = False
    for p in results:
        if not math.isnan(p.mean_response):
            responses.record(p.mean_response)
        gross.record(p.gross_utilization)
        net.record(p.net_utilization)
        saturated = saturated or p.saturated
    if responses.count >= 2:
        t = student_t_quantile(0.5 + level / 2.0, responses.count - 1)
        half = t * responses.std / math.sqrt(responses.count)
    else:
        half = math.inf
    return ReplicatedPoint(
        offered_gross=offered,
        mean_response=responses.mean,
        response_ci=ConfidenceInterval(responses.mean, half, level),
        mean_gross_utilization=gross.mean,
        mean_net_utilization=net.mean,
        replications=len(results),
        any_saturated=saturated,
    )


def replicate_sweep(label: str, config: SimulationConfig,
                    size_distribution, service_distribution,
                    utilizations: Sequence[float],
                    replications: int = 5,
                    confidence: float = 0.95,
                    base_seed: Optional[int] = None) -> ReplicatedSweep:
    """Run ``replications`` sweeps with distinct seeds and aggregate.

    Points are aligned by *offered* utilization; a point missing from a
    replication (the sweep stopped after saturating) is aggregated over
    the replications that reached it.
    """
    if replications < 1:
        raise ValueError(
            f"replications must be >= 1, got {replications!r}"
        )
    base = config.seed if base_seed is None else base_seed
    seeds = tuple(base + 1_000 * i for i in range(replications))
    runs: list[SweepResult] = [
        sweep(label, replace(config, seed=seed), size_distribution,
              service_distribution, utilizations=utilizations)
        for seed in seeds
    ]
    points = []
    for offered in utilizations:
        matched = []
        for run in runs:
            for p in run.points:
                if abs(p.offered_gross - offered) < 1e-9:
                    matched.append(p)
                    break
        if not matched:
            break  # every replication saturated before this point
        points.append(_aggregate(offered, matched, confidence))
    return ReplicatedSweep(label=label, config=config,
                           points=tuple(points), seeds=seeds)


def paired_comparison(config_a: SimulationConfig,
                      config_b: SimulationConfig,
                      size_distribution, service_distribution,
                      utilization: float, replications: int = 5,
                      confidence: float = 0.95,
                      ) -> ConfidenceInterval:
    """CI on the response-time difference A − B at one utilization.

    Uses common random numbers: replication *i* of both configurations
    shares a seed, so the per-seed differences cancel workload noise —
    the standard paired-t design for policy comparison.
    """
    from repro.core.system import run_open_system
    from repro.sim.rng import StreamFactory
    from repro.workload.generator import JobFactory

    diffs = Tally()
    for i in range(replications):
        pair = []
        for config in (config_a, config_b):
            seeded = replace(config, seed=config.seed + 1_000 * i)
            factory = JobFactory(
                size_distribution, service_distribution,
                seeded.component_limit,
                clusters=len(seeded.capacities),
                extension_factor=seeded.extension_factor,
                routing_weights=seeded.routing_weights,
                streams=StreamFactory(seeded.seed),
            )
            rate = factory.arrival_rate_for_gross_utilization(
                utilization, seeded.capacity
            )
            pair.append(run_open_system(seeded, size_distribution,
                                        service_distribution, rate))
        diffs.record(pair[0].mean_response - pair[1].mean_response)
    if diffs.count >= 2:
        t = student_t_quantile(0.5 + confidence / 2.0, diffs.count - 1)
        half = t * diffs.std / math.sqrt(diffs.count)
    else:
        half = math.inf
    return ConfidenceInterval(diffs.mean, half, confidence)
