"""Independent replications: across-run confidence intervals.

Batch means (within one run) handle autocorrelation but share one
warmup; *independent replications* — the same configuration under
different master seeds — give the textbook-clean confidence interval
for steady-state means and a variance estimate that includes run-to-run
warmup bias.  The harness replicates whole sweeps, so a curve carries a
CI at every utilization point, and policy comparisons can report
paired (common-random-number) differences per seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.system import SimulationConfig
from repro.runner import (
    CacheSpec,
    RetryBudget,
    RetryPolicy,
    RunTask,
    begin_campaign,
    execute,
    execute_fused,
    finish_campaign,
    fused_eligible,
    resolve_cache,
    resolve_retry,
    task_key,
)
from repro.sim.backend import resolve_backend
from repro.sim.stats import ConfidenceInterval, Tally, student_t_quantile

from .points import SweepPoint
from .sweeps import SweepResult

__all__ = [
    "ReplicatedPoint",
    "ReplicatedSweep",
    "replicate_sweep",
    "paired_comparison",
]


@dataclass(frozen=True)
class ReplicatedPoint:
    """One utilization point aggregated over replications."""

    offered_gross: float
    mean_response: float
    response_ci: ConfidenceInterval
    mean_gross_utilization: float
    mean_net_utilization: float
    replications: int
    any_saturated: bool


@dataclass(frozen=True)
class ReplicatedSweep:
    """A curve with across-replication confidence intervals."""

    label: str
    config: SimulationConfig
    points: tuple[ReplicatedPoint, ...]
    seeds: tuple[int, ...]

    def series(self) -> tuple[list[float], list[float]]:
        """(utilization, mean response) arrays."""
        return (
            [p.mean_gross_utilization for p in self.points],
            [p.mean_response for p in self.points],
        )


def _aggregate(offered: float, results: Sequence, level: float
               ) -> ReplicatedPoint:
    responses = Tally()
    gross = Tally()
    net = Tally()
    saturated = False
    for p in results:
        if not math.isnan(p.mean_response):
            responses.record(p.mean_response)
        gross.record(p.gross_utilization)
        net.record(p.net_utilization)
        saturated = saturated or p.saturated
    if responses.count >= 2:
        t = student_t_quantile(0.5 + level / 2.0, responses.count - 1)
        half = t * responses.std / math.sqrt(responses.count)
    else:
        half = math.inf
    return ReplicatedPoint(
        offered_gross=offered,
        mean_response=responses.mean,
        response_ci=ConfidenceInterval(responses.mean, half, level),
        mean_gross_utilization=gross.mean,
        mean_net_utilization=net.mean,
        replications=len(results),
        any_saturated=saturated,
    )


def replicate_sweep(label: str, config: SimulationConfig,
                    size_distribution, service_distribution,
                    utilizations: Sequence[float],
                    replications: int = 5,
                    confidence: float = 0.95,
                    base_seed: Optional[int] = None,
                    *,
                    workers: Optional[int] = None,
                    cache: CacheSpec = None,
                    retry: Optional[RetryPolicy] = None,
                    backend: str = "scalar"
                    ) -> ReplicatedSweep:
    """Run ``replications`` sweeps with distinct seeds and aggregate.

    Points are aligned by *offered* utilization; a point missing from a
    replication (the sweep stopped after saturating) is aggregated over
    the replications that reached it.

    With ``workers > 1`` the replications advance in lock-step waves:
    each wave runs the next grid point of every still-active seed in
    parallel (independent runs, one task each), so exactly the same set
    of simulations executes as in a serial run — each seed still stops
    at its own saturation point — and the aggregated sweep is
    byte-identical at every worker count.

    ``backend="batch"`` fuses the whole study — every seed's chain of
    grid points — into lockstep lane-kernel calls
    (:func:`~repro.runner.fused.execute_fused`): each seed advances
    through the grid as a lane chain, stopping at its own saturation
    point, while other seeds' lanes keep the kernel busy.  Exactly the
    serial task set executes.  ``backend="auto"`` picks batch when
    numpy is available and ``replications`` clears the width threshold
    (:func:`~repro.sim.backend.resolve_backend`).  Per-seed statistics
    are contractually identical to the scalar engine's, but cache
    entries are keyed per (resolved) backend, so the two never mix.
    """
    if replications < 1:
        raise ValueError(
            f"replications must be >= 1, got {replications!r}"
        )
    backend = resolve_backend(backend, config, width=replications,
                              size_distribution=size_distribution)
    base = config.seed if base_seed is None else base_seed
    seeds = tuple(base + 1_000 * i for i in range(replications))
    runs = _replicated_runs(label, config, seeds, size_distribution,
                            service_distribution, tuple(utilizations),
                            workers=workers, cache=cache, retry=retry,
                            backend=backend)
    points = []
    for offered in utilizations:
        matched = []
        for run in runs:
            for p in run.points:
                if abs(p.offered_gross - offered) < 1e-9:
                    matched.append(p)
                    break
        if not matched:
            break  # every replication saturated before this point
        points.append(_aggregate(offered, matched, confidence))
    return ReplicatedSweep(label=label, config=config,
                           points=tuple(points), seeds=seeds)


def _replicated_runs(label: str, config: SimulationConfig,
                     seeds: Sequence[int], size_distribution,
                     service_distribution,
                     utilizations: tuple[float, ...],
                     *, workers: Optional[int],
                     cache: CacheSpec,
                     retry: Optional[RetryPolicy] = None,
                     backend: str = "scalar"
                     ) -> list[SweepResult]:
    """One sweep per seed, advanced in parallel waves.

    Wave *w* submits grid point ``cursor[s]`` for every seed *s* whose
    sweep has neither exhausted the grid nor saturated — the exact task
    set a serial loop of :func:`~repro.analysis.sweeps.sweep` calls
    would run, independent of ``workers``.  With a cache active the
    full seeds × grid plan is recorded as a campaign manifest so an
    interrupted replication study resumes from its last completed run.

    Under ``backend="batch"`` the whole study fuses into lockstep
    lane-kernel calls: every seed starts a lane at the first grid
    point, and each completed point chains the seed's *next* grid
    point into the freed slot unless the seed saturated or exhausted
    the grid — exactly the serial task set, scheduled by lane
    availability instead of waves.  Fault injection and observability
    need per-task process boundaries, so when either is active the
    study falls back to :func:`~repro.runner.pool.execute` waves with
    per-task batch workers — same results, task at a time.
    """
    configs = [replace(config, seed=seed) for seed in seeds]
    store = resolve_cache(cache)
    cache_arg: CacheSpec = store if store is not None else False
    # Resolve the retry posture once and share its budget across every
    # wave's execute() call: the retry budget bounds the whole
    # replication campaign, not each wave.
    policy = resolve_retry(retry)
    budget = RetryBudget(policy.retry_budget)
    planned = [
        RunTask(c, size_distribution, service_distribution, rho,
                backend=backend)
        for c in configs
        for rho in utilizations
    ]
    manifest = begin_campaign("replicated-sweep", label, planned, store)
    collected: list[list[SweepPoint]] = [[] for _ in seeds]
    if backend == "batch" and fused_eligible():
        _fused_chains(configs, size_distribution, service_distribution,
                      utilizations, backend, cache_arg, collected)
    else:
        active = list(range(len(seeds)))
        cursor = [0] * len(seeds)
        while active:
            tasks = [
                RunTask(configs[i], size_distribution,
                        service_distribution, utilizations[cursor[i]],
                        backend=backend)
                for i in active
            ]
            wave = execute(tasks, workers=workers, cache=cache_arg,
                           retry=policy, budget=budget)
            still_active = []
            for i, point in zip(active, wave):
                collected[i].append(point)
                cursor[i] += 1
                if not point.saturated and cursor[i] < len(utilizations):
                    still_active.append(i)
            active = still_active
    finish_campaign(manifest, store,
                    points=sum(len(c) for c in collected))
    return [
        SweepResult(label=label, config=configs[i],
                    points=tuple(collected[i]))
        for i in range(len(seeds))
    ]


def _fused_chains(configs: "list[SimulationConfig]",
                  size_distribution, service_distribution,
                  utilizations: tuple[float, ...],
                  backend: str, cache_arg: CacheSpec,
                  collected: "list[list[SweepPoint]]") -> None:
    """Run every seed's grid chain through the fused lane executor.

    Seed *i*'s lane chain is sequential (its next grid point is
    scheduled by the follow-up of its current one), so ``collected[i]``
    fills in grid order; chains of different seeds interleave freely in
    the kernel without affecting any per-task result.  Cache hits
    advance a chain without occupying a lane, preserving resume
    semantics.
    """
    if not utilizations:
        return
    owner: dict[str, int] = {}
    cursor = [0] * len(configs)

    def chain_task(i: int) -> RunTask:
        task = RunTask(configs[i], size_distribution,
                       service_distribution, utilizations[cursor[i]],
                       backend=backend)
        owner[task_key(task)] = i
        return task

    def advance(task: RunTask, key: str,
                point: SweepPoint) -> "list[RunTask]":
        i = owner[key]
        collected[i].append(point)
        cursor[i] += 1
        if not point.saturated and cursor[i] < len(utilizations):
            return [chain_task(i)]
        return []

    execute_fused([chain_task(i) for i in range(len(configs))],
                  cache=cache_arg, follow_up=advance)


def paired_comparison(config_a: SimulationConfig,
                      config_b: SimulationConfig,
                      size_distribution, service_distribution,
                      utilization: float, replications: int = 5,
                      confidence: float = 0.95,
                      *,
                      workers: Optional[int] = None,
                      cache: CacheSpec = None,
                      retry: Optional[RetryPolicy] = None
                      ) -> ConfidenceInterval:
    """CI on the response-time difference A − B at one utilization.

    Uses common random numbers: replication *i* of both configurations
    shares a seed, so the per-seed differences cancel workload noise —
    the standard paired-t design for policy comparison.  All
    ``2 × replications`` runs are independent, so they fan out over
    ``workers`` processes in one batch (resumable mid-batch when a
    cache is active, like any other campaign).
    """
    tasks = [
        RunTask(replace(config, seed=config.seed + 1_000 * i),
                size_distribution, service_distribution, utilization)
        for i in range(replications)
        for config in (config_a, config_b)
    ]
    store = resolve_cache(cache)
    label = f"{config_a.policy}-vs-{config_b.policy}"
    manifest = begin_campaign("paired-comparison", label, tasks, store)
    results = execute(tasks, workers=workers,
                      cache=store if store is not None else False,
                      retry=retry)
    finish_campaign(manifest, store, points=len(results))
    diffs = Tally()
    for i in range(replications):
        a, b = results[2 * i], results[2 * i + 1]
        diffs.record(a.mean_response - b.mean_response)
    if diffs.count >= 2:
        t = student_t_quantile(0.5 + confidence / 2.0, diffs.count - 1)
        half = t * diffs.std / math.sqrt(diffs.count)
    else:
        half = math.inf
    return ConfidenceInterval(diffs.mean, half, confidence)
