"""Terminal (ASCII) plotting for curves and histograms.

The paper's figures are line plots and bar charts; this module renders
close-enough terminal versions so the benchmark harness can *show* each
regenerated figure without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = ["line_plot", "bar_chart", "sparkline"]

_MARKERS = "ox+*#@%&"

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SPARK_ASCII = " .:-=+*#"


def line_plot(series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
              width: int = 72, height: int = 20,
              x_label: str = "x", y_label: str = "y",
              title: str = "",
              x_range: Optional[tuple[float, float]] = None,
              y_range: Optional[tuple[float, float]] = None) -> str:
    """Scatter/line plot of named (xs, ys) series on a character grid.

    Points outside the ranges are clipped; NaNs are skipped.
    """
    cleaned = {
        name: [(x, y) for x, y in zip(xs, ys)
               if not (math.isnan(x) or math.isnan(y))]
        for name, (xs, ys) in series.items()
    }
    points = [p for pts in cleaned.values() for p in pts]
    if not points:
        return f"{title}\n(no data)"
    xs_all = [p[0] for p in points]
    ys_all = [p[1] for p in points]
    x_lo, x_hi = x_range if x_range else (min(xs_all), max(xs_all))
    y_lo, y_hi = y_range if y_range else (min(ys_all), max(ys_all))
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(cleaned.items(), _MARKERS):
        for x, y in pts:
            if not (x_lo <= x <= x_hi and y_lo <= y <= y_hi):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top {y_hi:.3g}, bottom {y_lo:.3g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(cleaned.items(), _MARKERS)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None,
              lo: Optional[float] = None, hi: Optional[float] = None,
              ascii_only: bool = False) -> str:
    """A one-line block-character sketch of a value sequence.

    With ``width`` given, the last ``width`` values are shown (the
    dashboard's "recent latencies" tile).  The range defaults to the
    min/max of the shown values; pin ``lo``/``hi`` to compare
    sparklines across refreshes.  NaNs render as spaces;
    ``ascii_only`` swaps the Unicode blocks for pure-ASCII shading.
    """
    shown = list(values)
    if width is not None and width > 0:
        shown = shown[-width:]
    if not shown:
        return ""
    finite = [v for v in shown if not math.isnan(v)]
    if not finite:
        return " " * len(shown)
    low = lo if lo is not None else min(finite)
    high = hi if hi is not None else max(finite)
    span = high - low
    levels = _SPARK_ASCII if ascii_only else _SPARK_LEVELS
    top = len(levels) - 1
    out = []
    for v in shown:
        if math.isnan(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(levels[top // 2])
            continue
        step = int((v - low) / span * top)
        out.append(levels[max(0, min(top, step))])
    return "".join(out)


def bar_chart(values: Mapping, width: int = 60, title: str = "",
              sort_keys: bool = True) -> str:
    """Horizontal bar chart of a {label: value} mapping."""
    if not values:
        return f"{title}\n(no data)"
    items = sorted(values.items()) if sort_keys else list(values.items())
    peak = max(v for _, v in items) or 1
    label_width = max(len(str(k)) for k, _ in items)
    lines = [title] if title else []
    for key, value in items:
        bar = "#" * max(0, int(value / peak * width))
        lines.append(f"{str(key).rjust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)
