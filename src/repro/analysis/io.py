"""Serialisation of experiment results to/from JSON.

Sweeps and reports are plain data; persisting them lets long runs be
archived, diffed across code versions and re-rendered without
re-simulating.  The format is versioned and deliberately flat — every
value a JSON scalar — so results stay greppable and stable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import TextIO, Union

from repro.core.system import SimulationConfig
from repro.metrics.recorder import UtilizationReport
from repro.sim.stats import ConfidenceInterval

from .replications import ReplicatedPoint, ReplicatedSweep
from .sweeps import SweepPoint, SweepResult

__all__ = ["save_sweep", "load_sweep", "save_report", "load_report",
           "save_replicated_sweep", "load_replicated_sweep",
           "FORMAT_VERSION"]

#: Bump when the on-disk shape changes incompatibly.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _config_to_dict(config: SimulationConfig) -> dict:
    d = asdict(config)
    d["capacities"] = list(d["capacities"])
    d["routing_weights"] = list(d["routing_weights"])
    return d


def _config_from_dict(d: dict) -> SimulationConfig:
    d = dict(d)
    d["capacities"] = tuple(d["capacities"])
    d["routing_weights"] = tuple(d["routing_weights"])
    return SimulationConfig(**d)


def save_sweep(result: SweepResult, target: "PathLike | TextIO") -> None:
    """Write a sweep result as JSON.

    When observability is enabled and ``target`` is a path, a
    ``<target>.manifest.json`` provenance record is written next to it
    (side-band only: the sweep JSON itself is byte-identical either
    way).
    """
    payload = {
        "format": "repro.sweep",
        "version": FORMAT_VERSION,
        "label": result.label,
        "config": _config_to_dict(result.config),
        "points": [asdict(p) for p in result.points],
    }
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        _maybe_write_sweep_manifest(result, Path(target))
    else:
        json.dump(payload, target, indent=2)


def _maybe_write_sweep_manifest(result: SweepResult,
                                target: Path) -> None:
    from repro.obs.gate import obs_enabled

    if not obs_enabled():
        return
    from repro.obs import manifest as obs_manifest

    obs_manifest.write_manifest(
        obs_manifest.for_sweep(result.label, result.config,
                               points=len(result.points)),
        target.with_name(target.name + ".manifest.json"),
    )


def load_sweep(source: "PathLike | TextIO") -> SweepResult:
    """Read a sweep result written by :func:`save_sweep`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(source)
    if payload.get("format") != "repro.sweep":
        raise ValueError("not a repro sweep file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported sweep format version {payload.get('version')!r}"
        )
    return SweepResult(
        label=payload["label"],
        config=_config_from_dict(payload["config"]),
        points=tuple(SweepPoint(**p) for p in payload["points"]),
    )


def _replicated_point_to_dict(point: ReplicatedPoint) -> dict:
    d = asdict(point)
    ci = point.response_ci
    d["response_ci"] = {"mean": ci.mean, "half_width": ci.half_width,
                        "level": ci.level}
    return d


def _replicated_point_from_dict(d: dict) -> ReplicatedPoint:
    d = dict(d)
    d["response_ci"] = ConfidenceInterval(**d["response_ci"])
    return ReplicatedPoint(**d)


def save_replicated_sweep(result: ReplicatedSweep,
                          target: "PathLike | TextIO") -> None:
    """Write a replicated sweep (curve + CIs + seeds) as JSON.

    The non-finite half widths of single-replication points serialize
    as JSON ``Infinity`` — Python-readable, by design.
    """
    payload = {
        "format": "repro.replicated_sweep",
        "version": FORMAT_VERSION,
        "label": result.label,
        "config": _config_to_dict(result.config),
        "seeds": list(result.seeds),
        "points": [_replicated_point_to_dict(p) for p in result.points],
    }
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    else:
        json.dump(payload, target, indent=2)


def load_replicated_sweep(source: "PathLike | TextIO") -> ReplicatedSweep:
    """Read a replicated sweep written by :func:`save_replicated_sweep`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(source)
    if payload.get("format") != "repro.replicated_sweep":
        raise ValueError("not a repro replicated-sweep file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported replicated-sweep format version "
            f"{payload.get('version')!r}"
        )
    return ReplicatedSweep(
        label=payload["label"],
        config=_config_from_dict(payload["config"]),
        points=tuple(_replicated_point_from_dict(p)
                     for p in payload["points"]),
        seeds=tuple(payload["seeds"]),
    )


def save_report(report: UtilizationReport,
                target: "PathLike | TextIO") -> None:
    """Write a utilization report as JSON."""
    payload = {
        "format": "repro.report",
        "version": FORMAT_VERSION,
        "report": report.as_dict(),
    }
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    else:
        json.dump(payload, target, indent=2)


def load_report(source: "PathLike | TextIO") -> UtilizationReport:
    """Read a report written by :func:`save_report`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(source)
    if payload.get("format") != "repro.report":
        raise ValueError("not a repro report file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported report format version {payload.get('version')!r}"
        )
    return UtilizationReport(**payload["report"])
