"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's exhibits, isolating individual mechanisms:

* placement rule (the paper fixes Worst Fit);
* the wide-area extension factor (the paper fixes 1.25 and claims
  viability up to about that value);
* the request-type taxonomy (the paper's focus is unordered requests);
* backfilling (the paper credits LS's advantage to an implicit
  backfilling window equal to the number of clusters).
"""

from __future__ import annotations

from typing import Optional

from repro.core.extensions import make_backfill_policy
from repro.core.system import (
    MulticlusterSimulation,
    SimulationConfig,
    run_constant_backlog,
    run_open_system,
)
from repro.sim.rng import StreamFactory
from repro.workload import JobFactory, das_s_128, das_t_900
from repro.workload import stats_model

from .experiments import Scale, get_scale

__all__ = [
    "placement_rule_ablation",
    "extension_factor_ablation",
    "request_type_ablation",
    "backfilling_ablation",
    "estimate_accuracy_ablation",
    "workload_sensitivity_ablation",
    "das2_heterogeneous_study",
]


def _max_util(config: SimulationConfig, sizes, service,
              scale: Scale) -> float:
    report = run_constant_backlog(
        config, sizes, service, backlog=60,
        warmup_jobs=scale.backlog_warmup,
        measured_jobs=scale.backlog_measured,
    )
    return report.gross_utilization


def placement_rule_ablation(scale: Optional[Scale] = None,
                            limit: int = 16) -> dict:
    """Maximal GS utilization under Worst/First/Best Fit placement."""
    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    out = {}
    for rule in ("worst-fit", "first-fit", "best-fit"):
        config = scale.config("GS", limit, placement=rule)
        out[rule] = _max_util(config, sizes, service, scale)
    return {"limit": limit, "max_gross_utilization": out}


def extension_factor_ablation(scale: Optional[Scale] = None,
                              net_rho: float = 0.45,
                              factors=(1.0, 1.1, 1.2, 1.25, 1.3, 1.4),
                              ) -> dict:
    """LS-vs-SC response ratio as the extension factor grows.

    The offered *net* load is held constant, so every factor carries
    the same useful work; the response ratio shows where co-allocation
    stops paying (the paper's ~1.25 viability bound).
    """
    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()

    sc_config = scale.config("SC", None)
    sc_factory = JobFactory(sizes, service, None,
                            clusters=1, extension_factor=1.0,
                            streams=StreamFactory(sc_config.seed))
    sc_rate = net_rho * sc_config.capacity / sc_factory.expected_net_work()
    sc = run_open_system(sc_config, sizes, service, sc_rate)

    rows = []
    for factor in factors:
        config = scale.config("LS", 16, extension_factor=factor)
        factory = JobFactory(sizes, service, 16,
                             extension_factor=factor,
                             streams=StreamFactory(config.seed))
        rate = net_rho * config.capacity / factory.expected_net_work()
        result = run_open_system(config, sizes, service, rate)
        rows.append({
            "factor": factor,
            "ls_response": result.mean_response,
            "ratio_vs_sc": result.mean_response / sc.mean_response,
            "saturated": result.saturated,
        })
    return {"net_rho": net_rho, "sc_response": sc.mean_response,
            "rows": rows}


def request_type_ablation(scale: Optional[Scale] = None,
                          limit: int = 16) -> dict:
    """Maximal utilization across the request-type taxonomy.

    Flexible ≥ unordered ≥ ordered is the expected dominance order
    (each type strictly relaxes the previous one's constraints).
    """
    from repro.core.extensions import FlexibleGSPolicy, OrderedGSPolicy

    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    out = {}
    variants = {
        "unordered": "GS",
        "ordered": lambda s: OrderedGSPolicy(s),
        "flexible": lambda s: FlexibleGSPolicy(s),
    }
    for name, policy in variants.items():
        config = scale.config("GS", limit)
        # run_constant_backlog builds the system from config.policy, so
        # for the extension policies drive the system manually.
        if isinstance(policy, str):
            out[name] = _max_util(config, sizes, service, scale)
        else:
            out[name] = _backlog_with_factory(policy, config, sizes,
                                              service, scale)
    # The single-cluster total-request reference.
    sc_config = scale.config("SC", None)
    out["total (SC)"] = _max_util(sc_config, sizes, service, scale)
    return {"limit": limit, "max_gross_utilization": out}


def backfilling_ablation(scale: Optional[Scale] = None,
                         limit: int = 16) -> dict:
    """GS vs GS with backfilling windows vs LS (maximal utilization).

    Tests the paper's §3.1.1 explanation of LS's advantage: a window-C
    backfilling GS should close (most of) the gap to LS.
    """
    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    out = {
        "GS (no backfill)": _max_util(
            scale.config("GS", limit), sizes, service, scale),
        "LS (4 queues)": _max_util(
            scale.config("LS", limit), sizes, service, scale),
    }
    for window in (2, 4, 8):
        out[f"GS-BF window={window}"] = _backlog_with_factory(
            make_backfill_policy(window), scale.config("GS", limit),
            sizes, service, scale,
        )
    from repro.core.extensions import EasyBackfillGSPolicy

    out["GS-EASY (reservation)"] = _backlog_with_factory(
        lambda s: EasyBackfillGSPolicy(s), scale.config("GS", limit),
        sizes, service, scale,
    )
    return {"limit": limit, "max_gross_utilization": out}


def estimate_accuracy_ablation(scale: Optional[Scale] = None,
                               limit: int = 16,
                               factors=(1.0, 2.0, 5.0, 10.0)) -> dict:
    """EASY backfilling under multiplicatively inaccurate estimates.

    Real EASY sees user runtime estimates, which are notoriously
    inflated; the classic "f-model" multiplies true runtimes by a
    constant factor.  Overestimates shrink backfilling opportunities
    (candidates look too long to fit under the reservation) — measured
    here as the maximal gross utilization per factor.
    """
    from repro.core.extensions import EasyBackfillGSPolicy

    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    out = {}
    for f in factors:
        def factory(system, f=f):
            estimator = (None if f == 1.0
                         else (lambda job, f=f:
                               f * job.gross_service_time))
            return EasyBackfillGSPolicy(system, estimator=estimator)

        out[f] = _backlog_with_factory(
            factory, scale.config("GS", limit), sizes, service, scale,
        )
    out["GS (no backfill)"] = _max_util(
        scale.config("GS", limit), sizes, service, scale
    )
    return {"limit": limit, "max_gross_utilization": out}


def workload_sensitivity_ablation(scale: Optional[Scale] = None) -> dict:
    """Does the L=24 packing disaster survive other workloads?

    Runs the GS maximal-utilization experiment per component-size limit
    under three size models: the DAS trace reconstruction, a
    log-uniform model with power-of-two preference, and a harmonic
    small-job mix.  The paper's L=24 effect is driven by the 19% mass
    at size 64; workloads without that spike should show a much weaker
    (or no) penalty — quantifying how trace-specific the finding is.
    """
    from repro.workload.models import HarmonicSizes, LogUniformSizes

    scale = scale or get_scale()
    service = das_t_900()
    models = {
        "DAS-s-128 (trace)": das_s_128(),
        "log-uniform p2=0.75": LogUniformSizes(128, 0.75),
        "harmonic": HarmonicSizes(128),
    }
    table: dict[str, dict[int, float]] = {}
    for name, sizes in models.items():
        row = {}
        for limit in stats_model.SIZE_LIMITS:
            row[limit] = _max_util(
                scale.config("GS", limit), sizes, service, scale
            )
        table[name] = row
    return {"max_gross_utilization": table}


def das2_heterogeneous_study(scale: Optional[Scale] = None,
                             limit: int = 32,
                             utilization: float = 0.5) -> dict:
    """Co-allocation on the real (heterogeneous) DAS2 shape.

    The paper simulates an idealised homogeneous 4x32 system; the
    actual DAS2 has five clusters of 72+32+32+32+32 nodes (§2.1).  This
    study runs GS/LS/LP on that shape (local-queue routing proportional
    to cluster capacity) against a 200-processor SC reference, at one
    moderate load — the first-order check that the policy ordering
    carries over to the heterogeneous system.
    """
    from repro.core.system import run_open_system

    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    capacities = (72, 32, 32, 32, 32)
    total = sum(capacities)
    weights = tuple(c / total for c in capacities)
    results = {}
    for policy in ("GS", "LS", "LP", "SC"):
        if policy == "SC":
            config = scale.config("SC", None,
                                  capacities=(total,))
        else:
            config = scale.config(policy, limit,
                                  capacities=capacities,
                                  routing_weights=weights)
        factory = JobFactory(
            sizes, service, config.component_limit,
            clusters=len(config.capacities),
            extension_factor=config.extension_factor,
            routing_weights=config.routing_weights,
            streams=StreamFactory(config.seed),
        )
        rate = factory.arrival_rate_for_gross_utilization(
            utilization, config.capacity
        )
        result = run_open_system(config, sizes, service, rate)
        results[policy] = {
            "mean_response": result.mean_response,
            "gross_utilization": result.gross_utilization,
            "net_utilization": result.net_utilization,
            "saturated": result.saturated,
        }
    return {
        "capacities": capacities,
        "limit": limit,
        "target_utilization": utilization,
        "results": results,
    }


def _backlog_with_factory(policy_factory, config: SimulationConfig,
                          sizes, service, scale: Scale) -> float:
    """Constant-backlog run for a policy given as a factory."""
    system = MulticlusterSimulation(
        policy=policy_factory,
        capacities=config.capacities,
        extension_factor=config.extension_factor,
        placement=config.placement,
        batch_size=config.batch_size,
    )
    factory = JobFactory(
        sizes, service, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    system.on_departure_hook = lambda _job: system.submit(
        factory.next_job()
    )
    for _ in range(60):
        system.submit(factory.next_job())
    system.sim.run_while(
        lambda: system.jobs_finished < scale.backlog_warmup
    )
    system.metrics.reset(system.sim.now)
    target = scale.backlog_warmup + scale.backlog_measured
    system.sim.run_while(lambda: system.jobs_finished < target)
    return system.metrics.gross_utilization(system.sim.now)
