"""Definitions of every experiment in the paper's evaluation.

One function per table/figure, each returning plain data structures that
the benchmark harness prints and EXPERIMENTS.md records.  Simulation
sizes are controlled by :class:`Scale` — ``quick`` (default, minutes for
the whole suite) or ``full`` (paper-grade run lengths) via the
``REPRO_BENCH_SCALE`` environment variable.

Experiment index (see DESIGN.md §4):

=========  ==========================================================
Exhibit    Function
=========  ==========================================================
Table 1    :func:`table1_power_of_two_fractions`
Figure 1   :func:`fig1_size_density`
Figure 2   :func:`fig2_service_density`
Table 2    :func:`table2_component_fractions`
Figure 3   :func:`fig3_policy_comparison`
Figure 4   :func:`fig4_lp_saturation`
Figure 5   :func:`fig5_total_size_limit`
Figure 6   :func:`fig6_component_size_limits`
Figure 7   :func:`fig7_gross_vs_net`
Table 3    :func:`table3_maximal_utilization`
=========  ==========================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.system import SimulationConfig
from repro.metrics.saturation import (
    MaximalUtilization,
    estimate_maximal_utilization,
)
from repro.sim.rng import StreamFactory
from repro.workload import (
    JobFactory,
    das_s_64,
    das_s_128,
    das_t_900,
    generate_das_log,
    runtime_histogram,
    size_histogram,
)
from repro.workload import stats_model
from repro.workload.splitting import component_fractions

if TYPE_CHECKING:  # pragma: no cover - break the import cycle with
    # repro.runner, whose cache module needs repro.analysis.points (and
    # therefore this package's __init__) at import time.  CacheSpec is
    # only ever used in (string-evaluated) annotations here.
    from repro.runner import CacheSpec

from .sweeps import SweepResult, sweep, utilization_grid
from .theory import gross_net_ratios_table

__all__ = [
    "Scale",
    "get_scale",
    "table1_power_of_two_fractions",
    "fig1_size_density",
    "fig2_service_density",
    "table2_component_fractions",
    "fig3_policy_comparison",
    "fig4_lp_saturation",
    "fig5_total_size_limit",
    "fig6_component_size_limits",
    "fig7_gross_vs_net",
    "table3_maximal_utilization",
    "POLICY_ORDER",
]

#: Display order for the four policies.
POLICY_ORDER = ("LS", "SC", "GS", "LP")

#: The near-LP-saturation gross-utilization points of the paper's
#: Figure 4, per component-size limit.
FIG4_UTILIZATIONS = {16: 0.55, 24: 0.46, 32: 0.54}


@dataclass(frozen=True)
class Scale:
    """Run-length parameters for the experiment suite."""

    name: str
    warmup_jobs: int
    measured_jobs: int
    grid_step: float
    grid_stop: float
    backlog_warmup: int
    backlog_measured: int
    log_jobs: int
    seed: int = 20030622  # HPDC'03 conference date

    def grid(self, start: float = 0.2,
             stop: Optional[float] = None) -> tuple[float, ...]:
        """Offered-utilization grid (index-based, drift-free)."""
        stop = self.grid_stop if stop is None else stop
        return utilization_grid(start, stop, self.grid_step)

    def config(self, policy: str, limit: Optional[int],
               balanced: bool = True, **overrides) -> SimulationConfig:
        """A SimulationConfig at this scale."""
        weights = (stats_model.BALANCED_WEIGHTS if balanced
                   else stats_model.UNBALANCED_WEIGHTS)
        base = dict(
            policy=policy,
            component_limit=limit,
            routing_weights=weights,
            warmup_jobs=self.warmup_jobs,
            measured_jobs=self.measured_jobs,
            seed=self.seed,
        )
        if policy == "SC":
            base.update(capacities=(stats_model.SINGLE_CLUSTER_SIZE,),
                        component_limit=None)
        base.update(overrides)
        return SimulationConfig(**base)


SCALES = {
    "smoke": Scale(
        name="smoke", warmup_jobs=150, measured_jobs=800,
        grid_step=0.20, grid_stop=0.60,
        backlog_warmup=150, backlog_measured=800,
        log_jobs=5_000,
    ),
    "quick": Scale(
        name="quick", warmup_jobs=1_000, measured_jobs=6_000,
        grid_step=0.10, grid_stop=0.80,
        backlog_warmup=500, backlog_measured=4_000,
        log_jobs=30_000,
    ),
    "full": Scale(
        name="full", warmup_jobs=4_000, measured_jobs=25_000,
        grid_step=0.05, grid_stop=0.85,
        backlog_warmup=2_000, backlog_measured=15_000,
        log_jobs=30_000,
    ),
}


def get_scale(name: Optional[str] = None) -> Scale:
    """The active scale (``REPRO_BENCH_SCALE`` env var, default quick)."""
    name = name or os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Workload exhibits (Tables 1-2, Figures 1-2)
# ---------------------------------------------------------------------------

def table1_power_of_two_fractions(scale: Optional[Scale] = None) -> dict:
    """Table 1: fraction of jobs at each power-of-two size.

    Returns the paper's values, the canonical model values and the
    values measured on a freshly generated synthetic log.
    """
    scale = scale or get_scale()
    log = generate_das_log(seed=scale.seed, num_jobs=scale.log_jobs)
    hist = size_histogram(log)
    total = sum(hist.values())
    rows = []
    for size, paper in sorted(stats_model.POWER_OF_TWO_FRACTIONS.items()):
        model = stats_model.SIZE_TABLE[size] / 10_000
        measured = hist.get(size, 0) / total
        rows.append({"size": size, "paper": paper, "model": model,
                     "log": measured})
    return {"rows": rows, "log_jobs": total}


def fig1_size_density(scale: Optional[Scale] = None) -> dict:
    """Figure 1: the density of job-request sizes, split into the
    power-of-two series and the other-numbers series."""
    scale = scale or get_scale()
    log = generate_das_log(seed=scale.seed, num_jobs=scale.log_jobs)
    hist = size_histogram(log)
    powers = {1, 2, 4, 8, 16, 32, 64, 128}
    return {
        "powers": {s: n for s, n in hist.items() if s in powers},
        "others": {s: n for s, n in hist.items() if s not in powers},
        "total": sum(hist.values()),
        "distinct_sizes": len(hist),
    }


def fig2_service_density(scale: Optional[Scale] = None,
                         bin_width: float = 20.0) -> dict:
    """Figure 2: the density of service times below the 900 s cutoff."""
    scale = scale or get_scale()
    log = generate_das_log(seed=scale.seed, num_jobs=scale.log_jobs)
    hist = runtime_histogram(log, bin_width=bin_width)
    below = [r.runtime for r in log
             if r.runtime <= stats_model.SERVICE_CUTOFF]
    mean = sum(below) / len(below)
    var = sum((x - mean) ** 2 for x in below) / len(below)
    return {
        "bins": hist,
        "bin_width": bin_width,
        "mean": mean,
        "cv": var ** 0.5 / mean,
        "fraction_below_cutoff": len(below) / len(log),
    }


def table2_component_fractions() -> dict:
    """Table 2: fractions of jobs with 1..4 components per limit."""
    dist = das_s_128()
    rows = []
    for limit in stats_model.SIZE_LIMITS:
        model = component_fractions(dist, limit, stats_model.NUM_CLUSTERS)
        paper = stats_model.COMPONENT_FRACTION_TARGETS[limit]
        rows.append({"limit": limit, "paper": paper, "model": model})
    return {"rows": rows}


# ---------------------------------------------------------------------------
# Simulation exhibits (Figures 3-7, Table 3)
# ---------------------------------------------------------------------------

def _policy_sweep(scale: Scale, policy: str, limit: Optional[int],
                  balanced: bool, sizes, label: Optional[str] = None,
                  grid: Sequence[float] = (),
                  workers: Optional[int] = None,
                  cache: CacheSpec = None) -> SweepResult:
    service = das_t_900()
    config = scale.config(policy, limit, balanced)
    return sweep(
        label or policy, config, sizes, service,
        utilizations=grid or scale.grid(),
        workers=workers, cache=cache,
    )


def fig3_policy_comparison(limit: int, balanced: bool = True,
                           scale: Optional[Scale] = None,
                           workers: Optional[int] = None,
                           cache: CacheSpec = None) -> list[SweepResult]:
    """Figure 3: all four policies at one component-size limit.

    Returns four sweeps (LS, SC, GS, LP).  SC ignores the limit — its
    curve is the reference repeated in every panel.  ``workers`` /
    ``cache`` default to the ``$REPRO_WORKERS`` / ``$REPRO_CACHE``
    environment variables, so the benchmark harness fans out without
    touching call sites.
    """
    scale = scale or get_scale()
    sizes = das_s_128()
    return [
        _policy_sweep(scale, policy, limit, balanced, sizes,
                      workers=workers, cache=cache)
        for policy in POLICY_ORDER
    ]


def fig4_lp_saturation(balanced: bool = True,
                       scale: Optional[Scale] = None) -> dict:
    """Figure 4: response times near LP's saturation point.

    For each component-size limit, every policy runs at the paper's
    utilization point; for LP the local/global queue breakdown is
    reported, plus the measured gross and net utilizations.
    """
    from repro.core.system import run_open_system

    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    panels = []
    for limit, rho in sorted(FIG4_UTILIZATIONS.items()):
        bars = {}
        gross = net = None
        for policy in ("GS", "LS", "LP", "SC"):
            config = scale.config(policy, limit, balanced)
            factory = JobFactory(
                sizes, service, config.component_limit,
                clusters=len(config.capacities),
                extension_factor=config.extension_factor,
                routing_weights=config.routing_weights,
                streams=StreamFactory(config.seed),
            )
            rate = factory.arrival_rate_for_gross_utilization(
                rho, config.capacity
            )
            result = run_open_system(config, sizes, service, rate)
            bars[policy] = {
                "total": result.mean_response,
                "local": result.report.mean_response_local,
                "global": result.report.mean_response_global,
                "saturated": result.saturated,
            }
            if policy == "GS":
                gross = result.gross_utilization
                net = result.net_utilization
        panels.append({
            "limit": limit,
            "target_gross_utilization": rho,
            "gross_utilization": gross,
            "net_utilization": net,
            "bars": bars,
        })
    return {"balanced": balanced, "panels": panels}


def fig5_total_size_limit(scale: Optional[Scale] = None,
                          workers: Optional[int] = None,
                          cache: CacheSpec = None) -> list[SweepResult]:
    """Figure 5: DAS-s-64 vs DAS-s-128 for all policies (L=16,
    balanced)."""
    scale = scale or get_scale()
    out = []
    for dist, tag in ((das_s_64(), "64"), (das_s_128(), "128")):
        for policy in POLICY_ORDER:
            out.append(_policy_sweep(
                scale, policy, 16, True, dist, label=f"{policy} {tag}",
                workers=workers, cache=cache,
            ))
    return out


def fig6_component_size_limits(policy: str, balanced: bool = True,
                               scale: Optional[Scale] = None,
                               workers: Optional[int] = None,
                               cache: CacheSpec = None,
                               ) -> list[SweepResult]:
    """Figure 6: one policy across the three component-size limits."""
    scale = scale or get_scale()
    sizes = das_s_128()
    return [
        _policy_sweep(scale, policy, limit, balanced, sizes,
                      label=f"{policy} {limit}",
                      workers=workers, cache=cache)
        for limit in stats_model.SIZE_LIMITS
    ]


def fig7_gross_vs_net(policy: str, limit: int,
                      scale: Optional[Scale] = None,
                      workers: Optional[int] = None,
                      cache: CacheSpec = None) -> dict:
    """Figure 7: one policy/limit curve against both utilization axes.

    One set of runs; each point carries its measured gross *and* net
    utilization, so the two curves are horizontal translations of each
    other by the §4 ratio.
    """
    scale = scale or get_scale()
    result = _policy_sweep(scale, policy, limit, True, das_s_128(),
                           label=f"{policy} {limit}",
                           workers=workers, cache=cache)
    ratio = gross_net_ratios_table(das_s_128())[limit]
    return {
        "sweep": result,
        "gross_series": result.series(x="gross_utilization"),
        "net_series": result.series(x="net_utilization"),
        "theoretical_ratio": ratio,
    }


def table3_maximal_utilization(scale: Optional[Scale] = None,
                               include_reference_policies: bool = True,
                               ) -> dict:
    """Table 3: maximal gross/net utilization of GS per limit, plus the
    §4 SC reference value (and optionally LS/LP for the extension
    study)."""
    scale = scale or get_scale()
    sizes, service = das_s_128(), das_t_900()
    ratios = gross_net_ratios_table(sizes)
    rows: list[MaximalUtilization] = []
    for limit in stats_model.SIZE_LIMITS:
        rows.append(estimate_maximal_utilization(
            scale.config("GS", limit), sizes, service, ratios[limit],
            backlog=60, warmup_jobs=scale.backlog_warmup,
            measured_jobs=scale.backlog_measured,
        ))
    sc = None
    extra: list[MaximalUtilization] = []
    if include_reference_policies:
        sc = estimate_maximal_utilization(
            scale.config("SC", None), sizes, service, 1.0,
            backlog=60, warmup_jobs=scale.backlog_warmup,
            measured_jobs=scale.backlog_measured,
        )
        for policy in ("LS", "LP"):
            extra.append(estimate_maximal_utilization(
                scale.config(policy, 16), sizes, service, ratios[16],
                backlog=60, warmup_jobs=scale.backlog_warmup,
                measured_jobs=scale.backlog_measured,
            ))
    return {"gs_rows": rows, "sc": sc, "extra": extra, "ratios": ratios}
