"""Multi-panel figure rendering (text form) for the paper's figures.

:mod:`repro.analysis.tables` renders single tables;
this module assembles the paper's *multi-panel* figures — Figure 3's
3×2 grid, Figure 6's per-policy triptychs, Figure 7's 3×3 grid — as
side-by-side ASCII panels, for the CLI and the report generator.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workload import stats_model

from . import experiments
from .ascii_plot import line_plot
from .sweeps import SweepResult

__all__ = [
    "render_panel",
    "side_by_side",
    "figure3_grid",
    "figure6_grid",
    "figure7_grid",
]

_PANEL_WIDTH = 46
_PANEL_HEIGHT = 12


def render_panel(sweeps: Sequence[SweepResult], title: str,
                 x: str = "gross_utilization",
                 y_max: float = 10_000.0) -> str:
    """One response-vs-utilization panel."""
    return line_plot(
        {s.label: s.series(x=x) for s in sweeps},
        width=_PANEL_WIDTH, height=_PANEL_HEIGHT,
        x_label="utilization", y_label="response",
        x_range=(0.0, 1.0), y_range=(0.0, y_max),
        title=title,
    )


def side_by_side(panels: Sequence[str], gap: str = "   ") -> str:
    """Join multi-line blocks horizontally (pad to equal height)."""
    if not panels:
        return ""
    split = [p.splitlines() for p in panels]
    height = max(len(lines) for lines in split)
    widths = [max((len(l) for l in lines), default=0) for lines in split]
    rows = []
    for i in range(height):
        row = []
        for lines, w in zip(split, widths):
            cell = lines[i] if i < len(lines) else ""
            row.append(cell.ljust(w))
        rows.append(gap.join(row).rstrip())
    return "\n".join(rows)


def figure3_grid(scale=None) -> str:
    """The full Figure 3: limits 16/24/32 × balanced/unbalanced."""
    scale = scale or experiments.get_scale()
    rows = []
    for balanced in (True, False):
        panels = []
        mode = "balanced" if balanced else "unbalanced"
        for limit in stats_model.SIZE_LIMITS:
            sweeps = experiments.fig3_policy_comparison(
                limit, balanced, scale)
            panels.append(render_panel(
                sweeps, title=f"L={limit} ({mode})"))
        rows.append(side_by_side(panels))
    return ("Figure 3 — response time vs gross utilization\n\n"
            + "\n\n".join(rows))


def figure6_grid(scale=None,
                 policies: Sequence[str] = ("LS", "LP", "GS")) -> str:
    """The full Figure 6: one panel per policy across limits."""
    scale = scale or experiments.get_scale()
    panels = []
    for policy in policies:
        sweeps = experiments.fig6_component_size_limits(
            policy, True, scale)
        panels.append(render_panel(sweeps, title=policy))
    return ("Figure 6 — size limits per policy (balanced)\n\n"
            + side_by_side(panels))


def figure7_grid(scale=None, limit: Optional[int] = 16,
                 policies: Sequence[str] = ("LS", "LP", "GS")) -> str:
    """Figure 7 panels: gross and net curves per policy."""
    scale = scale or experiments.get_scale()
    panels = []
    for policy in policies:
        data = experiments.fig7_gross_vs_net(policy, limit, scale)
        sweep = data["sweep"]
        gx, gy = data["gross_series"]
        nx, ny = data["net_series"]
        panels.append(line_plot(
            {"gross": (gx, gy), "net": (nx, ny)},
            width=_PANEL_WIDTH, height=_PANEL_HEIGHT,
            x_label="utilization", y_label="response",
            x_range=(0.0, 1.0), y_range=(0.0, 10_000.0),
            title=f"{sweep.label}",
        ))
    return (f"Figure 7 — gross vs net utilization (L={limit})\n\n"
            + side_by_side(panels))
