"""Text rendering of the paper's tables and figure data.

Every render function takes the data structure produced by the matching
:mod:`repro.analysis.experiments` function and returns a printable string
— the benchmark harness prints these so the regenerated exhibits are
visible in the bench output.
"""

from __future__ import annotations

import math
from typing import Sequence

from .sweeps import SweepResult

__all__ = [
    "format_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_sweeps",
    "render_fig4",
    "render_fig7",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Simple fixed-width table formatting."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def render_table1(data: dict) -> str:
    """Table 1: power-of-two size fractions (paper vs model vs log)."""
    rows = [
        (r["size"], r["paper"], r["model"], r["log"])
        for r in data["rows"]
    ]
    return format_table(
        ["size", "paper", "model", "synthetic log"], rows,
        title=(
            "Table 1 — fractions of jobs with sizes powers of two "
            f"(log of {data['log_jobs']} jobs)"
        ),
    )


def render_table2(data: dict) -> str:
    """Table 2: component-count fractions per size limit."""
    rows = []
    for r in data["rows"]:
        rows.append((
            r["limit"],
            "/".join(f"{v:.3f}" for v in r["paper"]),
            "/".join(f"{v:.3f}" for v in r["model"]),
        ))
    return format_table(
        ["limit", "paper (1/2/3/4 comps)", "model (1/2/3/4 comps)"],
        rows,
        title="Table 2 — fractions of jobs by number of components "
              "(DAS-s-128; L=16 row carries the 0.009 consistency "
              "correction)",
    )


def render_table3(data: dict) -> str:
    """Table 3: maximal gross/net utilizations."""
    rows = []
    for m in data["gs_rows"]:
        rows.append((f"GS L={m.config.component_limit}", m.gross, m.net))
    if data["sc"] is not None:
        rows.append(("SC (reference)", data["sc"].gross, data["sc"].net))
    for m in data["extra"]:
        rows.append((f"{m.config.policy} L={m.config.component_limit}",
                     m.gross, m.net))
    table = format_table(
        ["configuration", "maximal gross", "maximal net"], rows,
        title="Table 3 — maximal utilizations (constant backlog)",
    )
    ratios = ", ".join(
        f"L={L}: {r:.4f}" for L, r in sorted(data["ratios"].items())
    )
    return table + f"\ngross/net ratios (analytic): {ratios}"


def render_sweeps(sweeps: Sequence[SweepResult], title: str = "",
                  x: str = "gross_utilization") -> str:
    """Response-vs-utilization curves as a merged table."""
    rows = []
    for s in sweeps:
        for p in s.points:
            rows.append((
                s.label,
                round(p.offered_gross, 3),
                round(getattr(p, x), 3),
                round(p.mean_response, 1),
                "saturated" if p.saturated else "",
            ))
    table = format_table(
        ["curve", "offered", x, "mean response", ""], rows, title=title,
    )
    ranking = " > ".join(_rank(sweeps))
    return table + f"\nperformance ranking (best first): {ranking}"


def _rank(sweeps: Sequence[SweepResult]) -> list[str]:
    from .sweeps import rank_by_performance

    return rank_by_performance(list(sweeps))


def render_fig4(data: dict) -> str:
    """Figure 4: response-time bars near LP saturation."""
    blocks = []
    mode = "balanced" if data["balanced"] else "unbalanced"
    for panel in data["panels"]:
        rows = []
        for policy in ("GS", "LS", "LP", "SC"):
            bar = panel["bars"][policy]
            rows.append((
                policy,
                bar["local"],
                bar["total"],
                bar["global"],
                "saturated" if bar["saturated"] else "",
            ))
        title = (
            f"Figure 4 (L={panel['limit']}, {mode}) at gross util "
            f"~{panel['target_gross_utilization']:.2f} — measured "
            f"gross {panel['gross_utilization']:.3f}, "
            f"net {panel['net_utilization']:.3f}"
        )
        blocks.append(format_table(
            ["policy", "local", "total avg", "global", ""], rows,
            title=title,
        ))
    return "\n\n".join(blocks)


def render_fig7(data: dict) -> str:
    """Figure 7: gross and net utilization series for one curve."""
    s: SweepResult = data["sweep"]
    rows = []
    for p in s.points:
        rows.append((
            round(p.gross_utilization, 3),
            round(p.net_utilization, 3),
            round(p.mean_response, 1),
            "saturated" if p.saturated else "",
        ))
    table = format_table(
        ["gross util", "net util", "mean response", ""], rows,
        title=f"Figure 7 — {s.label}: response vs gross and net "
              "utilization",
    )
    return table + (
        f"\nanalytic gross/net ratio: {data['theoretical_ratio']:.4f}"
    )
