"""Classical queueing formulas used to validate the simulation stack.

The multicluster model has no closed form, but its degenerate cases do:
single-processor jobs on a c-processor cluster form an M/M/c (or M/G/1
for c = 1) queue.  The test suite runs those cases through the full
engine + policy + metrics pipeline and checks the measured means against
these formulas — an end-to-end correctness audit that catches subtle
bugs (event ordering, utilization windows, warmup handling) no unit test
would.

All formulas use the standard notation: arrival rate λ, mean service
time E[S] (rate μ = 1/E[S]), ρ = λ·E[S]/c.
"""

from __future__ import annotations

import math

__all__ = [
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_response",
    "mm1_mean_response",
    "mg1_mean_wait",
    "mg1_mean_response",
    "mean_queue_length",
]


def _offered_load(rate: float, mean_service: float, servers: int) -> float:
    if rate <= 0 or mean_service <= 0:
        raise ValueError("rate and mean service time must be positive")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    rho = rate * mean_service / servers
    if rho >= 1.0:
        raise ValueError(f"unstable system (rho = {rho:.4f} >= 1)")
    return rho


def erlang_c(rate: float, mean_service: float, servers: int) -> float:
    """Erlang-C probability that an arriving job must wait (M/M/c).

    Computed with the numerically stable iterative form of the Erlang-B
    recursion followed by the B→C conversion.
    """
    rho = _offered_load(rate, mean_service, servers)
    a = rate * mean_service  # offered load in Erlangs
    # Erlang-B recursion: B(0) = 1; B(k) = a·B(k-1) / (k + a·B(k-1)).
    b = 1.0
    for k in range(1, servers + 1):
        b = a * b / (k + a * b)
    return b / (1.0 - rho * (1.0 - b))


def mmc_mean_wait(rate: float, mean_service: float, servers: int) -> float:
    """Mean queueing delay in M/M/c."""
    rho = _offered_load(rate, mean_service, servers)
    c_prob = erlang_c(rate, mean_service, servers)
    return c_prob * mean_service / (servers * (1.0 - rho))


def mmc_mean_response(rate: float, mean_service: float,
                      servers: int) -> float:
    """Mean response time in M/M/c."""
    return mmc_mean_wait(rate, mean_service, servers) + mean_service


def mm1_mean_response(rate: float, mean_service: float) -> float:
    """Mean response time in M/M/1: E[S] / (1 − ρ)."""
    rho = _offered_load(rate, mean_service, 1)
    return mean_service / (1.0 - rho)


def mg1_mean_wait(rate: float, mean_service: float,
                  service_cv: float) -> float:
    """Pollaczek–Khinchine mean wait for M/G/1.

    ``service_cv`` is the coefficient of variation of the service time.
    """
    rho = _offered_load(rate, mean_service, 1)
    if service_cv < 0:
        raise ValueError(f"cv must be nonnegative, got {service_cv!r}")
    return (rho * mean_service * (1.0 + service_cv**2)
            / (2.0 * (1.0 - rho)))


def mg1_mean_response(rate: float, mean_service: float,
                      service_cv: float) -> float:
    """Mean response time in M/G/1 (P-K formula)."""
    return mg1_mean_wait(rate, mean_service, service_cv) + mean_service


def mean_queue_length(rate: float, mean_response: float) -> float:
    """Little's law: mean jobs in system L = λ·W."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if math.isnan(mean_response):
        return math.nan
    return rate * mean_response
