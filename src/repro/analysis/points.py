"""The atomic result of one simulation run: a curve point.

:class:`SweepPoint` is the payload produced by every (configuration ×
offered utilization × seed) run.  It lives in its own leaf module so
that both the sweep harness (:mod:`repro.analysis.sweeps`) and the
parallel execution backend (:mod:`repro.runner`) can depend on it
without importing each other.

The dict codec (:func:`point_to_dict` / :func:`point_from_dict`) is the
single definition of the point's on-disk shape, shared by the sweep
JSON archive and the runner's result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import OpenSystemResult

__all__ = ["SweepPoint", "point_to_dict", "point_from_dict"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a response-time curve."""

    offered_gross: float
    gross_utilization: float
    net_utilization: float
    mean_response: float
    ci_half_width: float
    saturated: bool

    @classmethod
    def from_result(cls, result: "OpenSystemResult") -> "SweepPoint":
        return cls(
            offered_gross=result.offered_gross_utilization,
            gross_utilization=result.gross_utilization,
            net_utilization=result.net_utilization,
            mean_response=result.mean_response,
            ci_half_width=result.report.response_ci_half_width,
            saturated=result.saturated,
        )


def point_to_dict(point: SweepPoint) -> dict[str, Any]:
    """The JSON-ready dict form of a point (flat, scalars only)."""
    return asdict(point)


def point_from_dict(payload: Mapping[str, Any]) -> SweepPoint:
    """Rebuild a point from its dict form.

    Raises ``KeyError`` on missing fields and ``TypeError`` on
    non-mapping input, so callers (the result cache) can treat any
    malformed payload as corrupt and recompute.
    """
    return SweepPoint(**{f.name: payload[f.name] for f in fields(SweepPoint)})
