"""One-shot reproduction report: every exhibit, rendered to Markdown.

``repro-sim report --out report.md`` (or :func:`generate_report`) runs
the full experiment suite at the chosen scale and writes a single
self-contained Markdown document: workload validation, every figure and
table, and the ablations — the machine-generated companion to the
hand-curated EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, TextIO, Union

from repro.obs.timing import wall_clock
from repro.workload import stats_model

from . import ablations, experiments, tables

__all__ = ["generate_report", "REPORT_SECTIONS"]


def _section_workload(scale) -> str:
    parts = [
        tables.render_table1(
            experiments.table1_power_of_two_fractions(scale)),
        tables.render_table2(experiments.table2_component_fractions()),
    ]
    fig2 = experiments.fig2_service_density(scale)
    parts.append(
        "Figure 2 reconstruction: service-time mean "
        f"{fig2['mean']:.1f}s, CV {fig2['cv']:.2f}, "
        f"{fig2['fraction_below_cutoff']:.1%} of jobs below the 900 s "
        "kill limit."
    )
    return "\n\n".join(parts)


def _section_fig3(scale) -> str:
    blocks = []
    for limit in stats_model.SIZE_LIMITS:
        for balanced in (True, False):
            sweeps = experiments.fig3_policy_comparison(
                limit, balanced, scale)
            mode = "balanced" if balanced else "unbalanced"
            blocks.append(tables.render_sweeps(
                sweeps,
                title=f"Figure 3 — L={limit}, {mode} local queues",
            ))
    return "\n\n".join(blocks)


def _section_fig4(scale) -> str:
    return "\n\n".join(
        tables.render_fig4(
            experiments.fig4_lp_saturation(balanced, scale))
        for balanced in (True, False)
    )


def _section_fig5(scale) -> str:
    return tables.render_sweeps(
        experiments.fig5_total_size_limit(scale),
        title="Figure 5 — maximal total job size 64 vs 128",
    )


def _section_fig6(scale) -> str:
    blocks = []
    for policy in ("LS", "LP", "GS"):
        blocks.append(tables.render_sweeps(
            experiments.fig6_component_size_limits(policy, True, scale),
            title=f"Figure 6 — {policy} across size limits",
        ))
    return "\n\n".join(blocks)


def _section_fig7(scale) -> str:
    blocks = []
    for policy in ("LS", "LP", "GS"):
        blocks.append(tables.render_fig7(
            experiments.fig7_gross_vs_net(policy, 16, scale)))
    return "\n\n".join(blocks)


def _section_table3(scale) -> str:
    return tables.render_table3(
        experiments.table3_maximal_utilization(scale))


def _section_ablations(scale) -> str:
    blocks = []
    placement = ablations.placement_rule_ablation(scale)
    blocks.append(tables.format_table(
        ["placement rule", "maximal gross utilization"],
        list(placement["max_gross_utilization"].items()),
        title="Ablation — placement rules",
    ))
    requests = ablations.request_type_ablation(scale)
    blocks.append(tables.format_table(
        ["request type", "maximal gross utilization"],
        list(requests["max_gross_utilization"].items()),
        title="Ablation — request types",
    ))
    backfill = ablations.backfilling_ablation(scale)
    blocks.append(tables.format_table(
        ["scheduler", "maximal gross utilization"],
        list(backfill["max_gross_utilization"].items()),
        title="Ablation — backfilling",
    ))
    return "\n\n".join(blocks)


#: Ordered (title, renderer) pairs; each renderer takes the scale.
REPORT_SECTIONS: list[tuple[str, Callable]] = [
    ("Workload validation (Tables 1-2, Figure 2)", _section_workload),
    ("Figure 3 — policy comparison", _section_fig3),
    ("Figure 4 — LP near saturation", _section_fig4),
    ("Figure 5 — limiting the total job size", _section_fig5),
    ("Figure 6 — component-size limits", _section_fig6),
    ("Figure 7 — gross vs net utilization", _section_fig7),
    ("Table 3 — maximal utilizations", _section_table3),
    ("Ablations", _section_ablations),
]


def generate_report(target: Union[str, Path, TextIO],
                    scale=None,
                    sections: Optional[list[str]] = None,
                    clock: Callable[[], float] = wall_clock
                    ) -> list[str]:
    """Run the experiment suite and write the Markdown report.

    Parameters
    ----------
    target:
        Output path or stream.
    scale:
        Experiment scale (default: the environment's).
    sections:
        Optional subset of section titles (prefix match, case-
        insensitive) to include.
    clock:
        Timing function (injectable for tests).

    Returns the list of section titles rendered.
    """
    scale = scale or experiments.get_scale()
    wanted = None
    if sections is not None:
        wanted = [s.lower() for s in sections]

    def selected(title: str) -> bool:
        if wanted is None:
            return True
        low = title.lower()
        return any(low.startswith(w) for w in wanted)

    rendered: list[str] = []
    chunks = [
        "# Reproduction report — Bucur & Epema, HPDC 2003",
        "",
        f"Scale: `{scale.name}` (warmup {scale.warmup_jobs}, measured "
        f"{scale.measured_jobs} jobs per point; master seed "
        f"{scale.seed}).",
        "",
    ]
    for title, renderer in REPORT_SECTIONS:
        if not selected(title):
            continue
        start = clock()
        body = renderer(scale)
        elapsed = clock() - start
        rendered.append(title)
        chunks.append(f"## {title}")
        chunks.append("")
        chunks.append("```")
        chunks.append(body)
        chunks.append("```")
        chunks.append("")
        chunks.append(f"_(generated in {elapsed:.1f} s)_")
        chunks.append("")
    text = "\n".join(chunks)
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
    return rendered
