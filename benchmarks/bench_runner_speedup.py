"""Parallel runner — wall-clock speedup and golden equivalence.

A ``bench_fig3_policies``-style replicated sweep (one policy, several
master seeds, the quick utilization grid) is timed serially and at
``workers=4``.  Three facts are asserted:

* the parallel result is byte-identical to the serial one (the runner's
  core guarantee — checked here on real benchmark workloads, not just
  the unit-test configs);
* on a host with >= 4 cores, ``workers=4`` is at least 2x faster;
* a cache-warm re-run completes without invoking the engine at all
  (every point served from ``.repro-cache``-style storage).

On smaller hosts the equivalence and cache assertions still run; the
speedup is recorded but not enforced.
"""

from __future__ import annotations

import io
import os
import time

from conftest import run_once

from repro.analysis.io import save_replicated_sweep
from repro.analysis.replications import replicate_sweep
from repro.runner import ResultCache
from repro.workload import das_s_128, das_t_900

REPLICATIONS = 4
GRID = (0.3, 0.45, 0.6)


def _payload(result) -> str:
    buf = io.StringIO()
    save_replicated_sweep(result, buf)
    return buf.getvalue()


def _replicated(scale, *, workers, cache=False):
    config = scale.config("GS", 16, warmup_jobs=300, measured_jobs=1_500)
    return replicate_sweep(
        "GS", config, das_s_128(), das_t_900(), GRID,
        replications=REPLICATIONS, workers=workers, cache=cache,
    )


def test_bench_runner_speedup(benchmark, scale, record, tmp_path):
    t0 = time.perf_counter()
    serial = _replicated(scale, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_once(benchmark, _replicated, scale, workers=4)
    parallel_s = time.perf_counter() - t0

    assert _payload(parallel) == _payload(serial), (
        "workers=4 result differs from serial"
    )

    # Cache-warm re-run: fill the cache, then re-run with an engine that
    # would crash if invoked.
    cache = ResultCache(tmp_path / "repro-cache")
    _replicated(scale, workers=1, cache=cache)
    runs_before = cache.stores
    warm = _replicated(scale, workers=1, cache=cache)
    assert _payload(warm) == _payload(serial)
    assert cache.stores == runs_before, "cache-warm re-run re-simulated"

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    record(
        "runner_speedup",
        f"Parallel runner speedup (replicated GS sweep, "
        f"{REPLICATIONS} seeds x {len(GRID)} grid points)\n"
        f"  host cores      {cores}\n"
        f"  serial          {serial_s:8.2f} s\n"
        f"  workers=4       {parallel_s:8.2f} s\n"
        f"  speedup         {speedup:8.2f} x\n"
        f"  byte-identical  yes\n"
        f"  cache-warm      0 engine invocations\n",
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at workers=4 on a {cores}-core host, "
            f"got {speedup:.2f}x"
        )
