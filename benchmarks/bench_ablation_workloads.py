"""Ablation — workload sensitivity of the size-limit finding.

The paper's L=24 packing disaster is driven by the DAS trace's 19% mass
at size 64.  Re-running the GS maximal-utilization experiment under a
log-uniform and a harmonic size model quantifies how trace-specific
that finding is.
"""

from conftest import run_once

from repro.analysis.ablations import workload_sensitivity_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_workloads(benchmark, scale, record):
    data = run_once(benchmark, workload_sensitivity_ablation, scale)
    table = data["max_gross_utilization"]
    rows = [
        (name, row[16], row[24], row[32])
        for name, row in table.items()
    ]
    record("ablation_workloads", format_table(
        ["size model", "L=16", "L=24", "L=32"], rows,
        title="Ablation — GS maximal gross utilization per size model",
    ))
    das = table["DAS-s-128 (trace)"]
    # The trace's L=24 penalty is large...
    assert das[24] < das[16] - 0.05
    assert das[24] < das[32] - 0.05
    # ...and specific: generic models show a far smaller spread, so the
    # paper's "pick a power-of-two limit" advice keys on the trace.
    for name in ("log-uniform p2=0.75", "harmonic"):
        row = table[name]
        das_penalty = min(das[16], das[32]) - das[24]
        other_penalty = min(row[16], row[32]) - row[24]
        assert other_penalty < das_penalty, (name, row)
