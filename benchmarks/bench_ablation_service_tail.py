"""Ablation — service-time tail shape.

The paper fixes the trace-derived DAS-t-900 service times.  Does the
*shape* (not the mean) of the service-time distribution matter?  Yes,
and for both systems: whenever a blocked FCFS head waits for processors
(SC's drains, GS's multi-cluster fits), the wait scales with the
residual service time of the stragglers, which grows with variance.
Measured: both SC and GS lose ~0.08 maximal utilization going from
deterministic to exponential service and ~0.25 more under a CV≈3.6
bounded-Pareto tail — while the SC-vs-GS *gap* stays nearly constant,
so the paper's policy comparisons are robust to the (illegible)
service-time CV even though the absolute utilizations are not.
"""

import pytest
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.system import run_constant_backlog
from repro.sim import BoundedPareto, Deterministic, Exponential
from repro.workload import das_s_128, das_t_900


def _experiment(scale):
    das = das_t_900()
    mean = das.mean
    services = {
        "deterministic": Deterministic(mean),
        "exponential": Exponential(mean),
        "DAS-t-900 (trace)": das,
        "bounded Pareto": _pareto_with_mean(mean),
    }
    sizes = das_s_128()
    out = {}
    for name, service in services.items():
        row = {}
        for policy in ("SC", "GS"):
            config = scale.config(policy, 16)
            report = run_constant_backlog(
                config, sizes, service, backlog=60,
                warmup_jobs=scale.backlog_warmup,
                measured_jobs=scale.backlog_measured,
            )
            row[policy] = report.gross_utilization
        row["cv"] = service.cv
        out[name] = row
    return out


def _pareto_with_mean(target_mean):
    """A bounded Pareto (alpha 1.1, support [lo, 600*lo]) scaled to the
    target mean — much heavier-tailed than the trace."""
    base = BoundedPareto(alpha=1.1, low=1.0, high=600.0)
    return BoundedPareto(
        alpha=1.1,
        low=target_mean / base.mean,
        high=600.0 * target_mean / base.mean,
    )


def test_bench_ablation_service_tail(benchmark, scale, record):
    data = run_once(benchmark, _experiment, scale)
    rows = [
        (name, row["cv"], row["SC"], row["GS"])
        for name, row in data.items()
    ]
    record("ablation_service_tail", format_table(
        ["service distribution", "CV", "SC max util", "GS max util"],
        rows,
        title="Ablation — service-time tail shape (same mean)",
    ))
    # Both policies degrade monotonically from deterministic to the
    # heavy tail (head-of-line waits scale with residual service).
    for policy in ("SC", "GS"):
        assert (data["deterministic"][policy]
                >= data["exponential"][policy] - 0.02)
        assert (data["exponential"][policy]
                >= data["bounded Pareto"][policy] - 0.02)
    # The trace (CV ~1) behaves like exponential service.
    assert data["DAS-t-900 (trace)"]["GS"] == pytest.approx(
        data["exponential"]["GS"], abs=0.04
    )
    # The SC-GS gap is stable across tails: policy comparisons are
    # robust to the service-time CV.
    gaps = [row["SC"] - row["GS"] for row in data.values()]
    assert max(gaps) - min(gaps) < 0.12
