"""Ablation — backfilling as the mechanism behind LS's advantage.

The paper (§3.1.1) attributes LS's edge to an implicit backfilling
window equal to the number of clusters.  This bench compares plain GS,
GS with explicit aggressive backfilling windows (2/4/8) and LS: the
window-4 backfiller should recover at least LS's maximal utilization,
and a larger window should not hurt.
"""

from conftest import run_once

from repro.analysis.ablations import backfilling_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_backfilling(benchmark, scale, record):
    data = run_once(benchmark, backfilling_ablation, scale)
    utils = data["max_gross_utilization"]
    rows = list(utils.items())
    record("ablation_backfilling", format_table(
        ["scheduler", "maximal gross utilization"], rows,
        title=f"Ablation — backfilling (L={data['limit']})",
    ))
    # Backfilling never hurts GS's maximal utilization...
    assert utils["GS-BF window=4"] >= utils["GS (no backfill)"] - 0.02
    # ...window 8 at least matches window 2...
    assert utils["GS-BF window=8"] >= utils["GS-BF window=2"] - 0.02
    # ...and an explicit window-4 backfiller reaches LS's level.
    assert utils["GS-BF window=4"] >= utils["LS (4 queues)"] - 0.03
