"""Engine microbenchmarks: event throughput of the DES substrate.

These are conventional pytest-benchmark measurements (repeated timing)
of the hot paths every experiment exercises: the event calendar, the
process machinery and the placement rule.
"""

from repro.core.placement import worst_fit
from repro.core.system import SimulationConfig, run_open_system
from repro.sim import Simulator
from repro.workload import das_s_128, das_t_900


def test_bench_event_calendar_throughput(benchmark):
    def run_timeout_storm():
        sim = Simulator()
        for i in range(5_000):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.events_processed

    events = benchmark(run_timeout_storm)
    assert events == 5_000


def test_bench_process_switching(benchmark):
    def run_ping_pong():
        sim = Simulator()
        count = 0

        def ticker(sim):
            nonlocal count
            for _ in range(2_000):
                yield sim.timeout(1.0)
                count += 1

        sim.process(ticker(sim))
        sim.run()
        return count

    assert benchmark(run_ping_pong) == 2_000


def test_bench_event_list_heap(benchmark):
    from repro.sim import HeapEventList

    benchmark(_churn_event_list, HeapEventList)


def test_bench_event_list_calendar(benchmark):
    from repro.sim import CalendarQueue

    benchmark(_churn_event_list, CalendarQueue)


def _churn_event_list(factory):
    """Hold ~1000 events while pushing/popping 5000 more (the typical
    steady-state churn pattern of a queueing simulation)."""
    import numpy as np

    q = factory()
    rng = np.random.default_rng(0)
    seq = 0
    now = 0.0
    for _ in range(1_000):
        seq += 1
        q.push((now + float(rng.exponential(10.0)), 1, seq, None))
    for _ in range(5_000):
        now, _, _, _ = q.pop()
        seq += 1
        q.push((now + float(rng.exponential(10.0)), 1, seq, None))
    return seq


def test_bench_worst_fit_placement(benchmark):
    free = [17, 32, 9, 28]
    components = (16, 16, 12)

    result = benchmark(worst_fit, components, free)
    assert result is not None


def test_bench_full_simulation_jobs_per_second(benchmark):
    """End-to-end cost of one simulated job under the GS policy."""
    sizes, service = das_s_128(), das_t_900()
    config = SimulationConfig(policy="GS", component_limit=16,
                              warmup_jobs=100, measured_jobs=2_000,
                              seed=3, batch_size=200)

    def run():
        return run_open_system(config, sizes, service, 0.004)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.report.completed_jobs == 2_000
