"""Ablation — the wide-area extension factor (viability bound).

The paper's abstract claims co-allocation remains viable while the
wide-area slowdown stays below roughly 1.25.  Holding the offered net
load fixed, the LS-vs-SC response ratio must grow monotonically-ish
with the factor, staying moderate at 1.0 and degrading severely well
above 1.25.
"""

from conftest import run_once

from repro.analysis.ablations import extension_factor_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_extension(benchmark, scale, record):
    data = run_once(benchmark, extension_factor_ablation, scale)
    rows = [
        (r["factor"], r["ls_response"], f"{r['ratio_vs_sc']:.2f}x",
         "saturated" if r["saturated"] else "")
        for r in data["rows"]
    ]
    record("ablation_extension", format_table(
        ["extension factor", "LS response", "vs SC", ""], rows,
        title=(
            "Ablation — extension factor at offered net load "
            f"{data['net_rho']:.2f} (SC reference "
            f"{data['sc_response']:.0f}s)"
        ),
    ))
    by_factor = {r["factor"]: r for r in data["rows"]}
    # With wide-area links as fast as local ones, LS is close to SC.
    assert by_factor[1.0]["ratio_vs_sc"] < 1.6
    # At the paper's 1.25 the system still runs (no saturation at this
    # moderate load)...
    assert not by_factor[1.25]["saturated"]
    # ...and higher factors only make things worse.
    assert (by_factor[1.4]["ls_response"]
            >= by_factor[1.0]["ls_response"])
