"""Extension — does the §3.2 size cap survive when work is conserved?

The paper's DAS-s-64 experiment *drops* the 2% of jobs above 64
processors; §3.2 notes that in reality their users would reshape them
to fit, paying longer service times.  This bench compares, at the same
offered gross utilization, three LS variants:

* full DAS-s-128 (no cap),
* DAS-s-64 (the paper's cut — work of the big jobs vanishes),
* reshaped cap at 64 with perfect and 80% reshaping efficiency.

Expectation: reshaping keeps most of the cut's benefit — the harm of
the big jobs was their *shape* (whole-machine allocations that force
drains), not their work, which reshaped jobs deliver in schedulable
64-processor form.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.system import run_open_system
from repro.sim.rng import StreamFactory
from repro.workload import JobFactory, das_s_64, das_s_128, das_t_900
from repro.workload.reshaping import ReshapingJobFactory


def _run_variant(scale, variant: str, rho: float):
    service = das_t_900()
    config = scale.config("LS", 16)
    if variant == "das-s-64":
        sizes = das_s_64()
    else:
        sizes = das_s_128()
    factory = JobFactory(
        sizes, service, config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
    )
    if variant.startswith("reshaped"):
        efficiency = 1.0 if variant.endswith("1.0") else 0.8
        reshaper = ReshapingJobFactory(factory, 64,
                                       efficiency=efficiency)
        rate = reshaper.arrival_rate_for_gross_utilization(
            rho, config.capacity
        )
        # The open-system driver builds its own factory; feed the
        # reshaped stream through a custom submit wrapper instead.
        from repro.core.system import MulticlusterSimulation
        from repro.workload import ArrivalProcess

        system = MulticlusterSimulation(
            policy=config.policy, capacities=config.capacities,
            extension_factor=config.extension_factor,
            batch_size=config.batch_size,
        )
        ArrivalProcess(system.sim, reshaper, rate, system.submit,
                       limit=None,
                       rng=StreamFactory(config.seed).get("arrivals.iat"))
        while system.jobs_finished < config.warmup_jobs:
            system.sim.step()
        system.metrics.reset(system.sim.now)
        target = config.warmup_jobs + config.measured_jobs
        while system.jobs_finished < target:
            system.sim.step()
        report = system.metrics.report(system.sim.now)
        backlog = system.policy.pending_jobs()
        return report.mean_response, report.gross_utilization, backlog > 70
    rate = factory.arrival_rate_for_gross_utilization(
        rho, config.capacity
    )
    result = run_open_system(config, sizes, service, rate)
    return (result.mean_response, result.gross_utilization,
            result.saturated)


def _experiment(scale, rho=0.60):
    variants = ("das-s-128", "das-s-64", "reshaped eff=1.0",
                "reshaped eff=0.8")
    return {
        "rho": rho,
        "results": {v: _run_variant(scale, v, rho) for v in variants},
    }


def test_bench_extension_reshaping(benchmark, scale, record):
    data = run_once(benchmark, _experiment, scale)
    rows = [
        (name, resp, util, "saturated" if sat else "")
        for name, (resp, util, sat) in data["results"].items()
    ]
    record("extension_reshaping", format_table(
        ["workload variant", "mean response", "gross util", ""], rows,
        title=(
            "Extension — size cap with work conservation (LS, L=16, "
            f"offered gross {data['rho']:.2f})"
        ),
    ))
    res = data["results"]
    full = res["das-s-128"][0]
    cut = res["das-s-64"][0]
    reshaped = res["reshaped eff=1.0"][0]
    # The paper's cut helps...
    assert cut < full
    # ...and conserving the work via reshaping keeps most of the win:
    # reshaped sits strictly below the uncapped workload.
    assert reshaped < full
    # Imperfect reshaping costs something relative to perfect.
    assert res["reshaped eff=0.8"][0] >= 0.85 * reshaped
