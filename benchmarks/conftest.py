"""Shared fixtures for the benchmark harness.

Every bench regenerates one exhibit of the paper (a table or figure),
prints it, and records it under ``benchmarks/results/`` so the output
survives the run.  Simulation scale is selected with the
``REPRO_BENCH_SCALE`` environment variable (``quick`` default, ``full``
for paper-grade lengths).

The sweep-based benches fan independent runs out over worker processes
when ``REPRO_WORKERS=N`` is set, and reuse completed runs from the
on-disk result cache when ``REPRO_CACHE=1`` (see ``docs/parallel.md``);
results are byte-identical at any worker count, so neither setting
changes an exhibit.

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_WORKERS=4 REPRO_CACHE=1 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import get_scale
from repro.runner import resolve_workers

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The active benchmark scale."""
    return get_scale()


@pytest.fixture(scope="session")
def workers():
    """The active worker count ($REPRO_WORKERS, default serial)."""
    return resolve_workers(None)


@pytest.fixture(scope="session")
def record():
    """Persist + print a rendered exhibit.

    Usage::

        def test_bench_table1(benchmark, record):
            data = benchmark.pedantic(fn, rounds=1, iterations=1)
            record("table1", render(data))
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (simulation benches are long-running;
    statistical repetition happens *inside* each simulation via batch
    means, not by re-running it)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
