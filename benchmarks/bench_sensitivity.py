"""Extension — sensitivity tornado around the paper's base case.

One-factor-at-a-time scan at a fixed offered net load: which modelling
choices move the response time, and by how much.  Expectations: the
total-size cut (DAS-s-64) and the extension factor dominate; the
placement rule barely matters.
"""

from conftest import run_once

from repro.analysis.sensitivity import render_tornado, sensitivity_scan


def test_bench_sensitivity(benchmark, scale, record):
    results = run_once(benchmark, sensitivity_scan, 0.40, "LS", scale)
    record("sensitivity", render_tornado(results))

    by_factor = {r.factor: r for r in results}
    # The placement rule is not load-bearing...
    assert by_factor["placement"].relative_swing < 0.25
    # ...while the extension factor and the size cut are.
    assert (by_factor["extension_factor"].swing
            > by_factor["placement"].swing)
    ext = by_factor["extension_factor"]
    assert ext.responses[0] < ext.responses[-1]  # 1.0 faster than 1.5
