#!/usr/bin/env python
"""Sweep-service overhead benchmark: campaigns through the socket.

Measures what the persistent campaign server (``repro.service``) adds
on top of the work itself, for one GS utilization grid:

* ``cold`` — submitting the grid to a fresh server over an empty cache
  (engine-bound: the stream costs only framing on top of execution);
* ``warm`` — resubmitting the identical spec (cache-bound: every cell
  is a read-through hit; this is the latency a returning client pays);
* ``throughput`` — warm submissions per second, each a full
  connect → submit → stream → close cycle over the Unix socket;
* ``overhead`` — paired A/B/B/A rounds of the cold service path
  against the in-process one-shot runner executing the same task list
  (``service elapsed / one-shot elapsed``; x1.00 means the socket adds
  nothing measurable to an engine-bound campaign).

Every round asserts the streamed points are identical to the one-shot
runner's (and that warm rounds trigger **zero** engine executions, via
the server's own ``status`` counters) before any timing is trusted —
a benchmark round that diverges raises instead of reporting a number.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --quick --check

Writes machine-readable results to ``BENCH_service.json`` (``--out``
to redirect).  ``--check`` gates correctness in both modes (warm zero
executions, byte-identical payloads) plus, in full mode, the service
overhead staying under x1.5 and warm throughput above 2 campaigns/s.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

# The service rides on the same numeric stack as the rest of the
# package; defer the import so a minimal environment gets a clear skip
# (exit 0) and pytest can still collect this file.
try:
    from repro.analysis.points import SweepPoint, point_to_dict
    from repro.runner import execute
    from repro.service import (
        ServiceClient,
        config_to_dict,
        normalize_spec,
        serve_in_thread,
        spec_tasks,
    )
except ModuleNotFoundError as exc:
    if (exc.name or "").partition(".")[0] != "numpy":
        raise
    _IMPORT_ERROR: Optional[ModuleNotFoundError] = exc
else:
    _IMPORT_ERROR = None

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "repro.bench.service/1"

RHOS_FULL = (0.3, 0.35, 0.4, 0.45, 0.5)
RHOS_QUICK = (0.3, 0.4)

#: --check gates.  Correctness (zero warm executions, identical
#: payloads) is asserted inside the rounds in both modes; the numeric
#: gates only apply to full mode — quick mode runs on shared CI
#: runners where latency numbers mean little.
CHECK_GATES = {
    "full": {"overhead_quartile_max": 1.5,
             "warm_campaigns_per_sec_min": 2.0},
    "quick": {},
}


def grid_spec(warmup: int, measured: int, rhos: tuple) -> dict:
    config = {"policy": "GS", "component_limit": 16, "seed": 7,
              "warmup_jobs": warmup, "measured_jobs": measured,
              "batch_size": max(1, measured // 10)}
    return normalize_spec({
        "label": "bench",
        "cells": [{"config": config, "offered_gross": rho}
                  for rho in rhos],
    })


def one_shot_points(spec: dict) -> "list[SweepPoint]":
    """The in-process runner over the spec's task list, uncached."""
    return execute(spec_tasks(spec), workers=1, cache=False)


def _fresh_service(root: Path, index: int):
    return serve_in_thread(root / f"cache-{index}",
                           root / f"svc-{index}.sock", fleet=4)


def bench_campaigns(spec: dict, rounds: int, warm_reps: int,
                    root: Path) -> dict:
    """Cold/warm/throughput/overhead in paired rounds."""
    expected = [point_to_dict(p) for p in one_shot_points(spec)]

    cold_times = []
    warm_times = []
    overhead_ratios = []
    throughput = []
    for round_index in range(rounds):
        # A/B/B/A: alternate which path pays the cold-start cost.
        def run_one_shot() -> float:
            start = time.perf_counter()
            points = one_shot_points(spec)
            elapsed = time.perf_counter() - start
            if [point_to_dict(p) for p in points] != expected:
                raise AssertionError("one-shot points diverged "
                                     "between rounds")
            return elapsed

        def run_service() -> float:
            with _fresh_service(root, round_index) as server:
                client = ServiceClient(server.socket_path)
                start = time.perf_counter()
                cold = client.run(spec)
                cold_elapsed = time.perf_counter() - start
                if cold.raw_points != expected:
                    raise AssertionError(
                        "service points diverged from the one-shot "
                        "runner; timing would be meaningless")
                executed = client.status()["counters"]["tasks.executed"]

                start = time.perf_counter()
                for _ in range(warm_reps):
                    warm = client.run(spec)
                warm_elapsed = (time.perf_counter() - start) / warm_reps
                if warm.raw_points != expected:
                    raise AssertionError("warm service points diverged")
                after = client.status()["counters"]["tasks.executed"]
                if after != executed:
                    raise AssertionError(
                        f"warm submissions executed {after - executed} "
                        "tasks; the cache round-trip is broken")
                cold_times.append(cold_elapsed)
                warm_times.append(warm_elapsed)
                throughput.append(1.0 / warm_elapsed)
                return cold_elapsed

        if round_index % 2 == 0:
            one_shot_elapsed = run_one_shot()
            service_elapsed = run_service()
        else:
            service_elapsed = run_service()
            one_shot_elapsed = run_one_shot()
        overhead_ratios.append(service_elapsed / one_shot_elapsed)
        shutil.rmtree(root / f"cache-{round_index}",
                      ignore_errors=True)

    quartile = (statistics.quantiles(overhead_ratios, n=4)[2]
                if len(overhead_ratios) > 1 else overhead_ratios[0])
    return {
        "grid_points": len(spec["cells"]),
        "cold_s_best": round(min(cold_times), 4),
        "warm_s_best": round(min(warm_times), 4),
        "warm_campaigns_per_sec": round(max(throughput), 1),
        "overhead_median": round(statistics.median(overhead_ratios), 3),
        # Upper quartile: the conservative bound on what the socket
        # costs (lower is better here, unlike a speedup).
        "overhead_quartile": round(quartile, 3),
        "overhead_rounds": [round(r, 3) for r in overhead_ratios],
        "warm_zero_executions": True,
        "payloads_identical": True,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="short runs for CI smoke testing")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_service.json",
                        help="output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the gates for the "
                             "current mode hold")
    args = parser.parse_args(argv)

    if _IMPORT_ERROR is not None:
        print("SKIPPED: numpy is not installed "
              f"({_IMPORT_ERROR}); install the numeric stack with "
              "`pip install repro[batch]` to run this benchmark")
        return 0

    if args.quick:
        warmup, measured, rounds, warm_reps = 100, 400, 2, 5
        rhos = RHOS_QUICK
    else:
        warmup, measured, rounds, warm_reps = 500, 2_000, 5, 20
        rhos = RHOS_FULL

    mode = "quick" if args.quick else "full"
    spec = grid_spec(warmup, measured, rhos)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-svc-"))
    try:
        case = bench_campaigns(spec, rounds, warm_reps, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    print(f"grid: {case['grid_points']} cells  "
          f"cold {case['cold_s_best']:.3f}s  "
          f"warm {case['warm_s_best'] * 1000:.1f}ms  "
          f"{case['warm_campaigns_per_sec']:.1f} campaigns/s warm  "
          f"overhead x{case['overhead_quartile']:.2f} "
          f"(median x{case['overhead_median']:.2f})")

    payload = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_service.py",
        "mode": mode,
        "python": platform.python_version(),
        "warmup_jobs": warmup,
        "measured_jobs": measured,
        "rounds": rounds,
        "warm_reps": warm_reps,
        "cases": {"grid": case},
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        reparsed = json.loads(args.out.read_text(encoding="utf-8"))
        gates = CHECK_GATES[reparsed["mode"]]
        case = reparsed["cases"]["grid"]
        failed = []
        if not (case["warm_zero_executions"]
                and case["payloads_identical"]):
            failed.append("correctness self-checks did not run")
        limit = gates.get("overhead_quartile_max")
        if limit is not None and case["overhead_quartile"] > limit:
            failed.append(f"overhead x{case['overhead_quartile']:.2f} "
                          f"> x{limit:.1f}")
        floor = gates.get("warm_campaigns_per_sec_min")
        if floor is not None and case["warm_campaigns_per_sec"] < floor:
            failed.append(f"{case['warm_campaigns_per_sec']:.1f} warm "
                          f"campaigns/s < {floor:.1f}")
        if failed:
            print(f"CHECK FAILED: {'; '.join(failed)}")
            return 1
        print(f"CHECK OK: all {reparsed['mode']}-mode gates hold and "
              "every round passed the identity self-checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
