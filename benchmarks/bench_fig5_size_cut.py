"""Figure 5 — limiting the total job size (DAS-s-64 vs DAS-s-128).

All four policies at L=16 with balanced queues, under the full size
distribution and under the distribution cut at 64.  The paper's finding:
removing the 2% of jobs larger than 64 improves every policy — more than
any policy choice does — and SC gains the most (no more whole-machine
drains for size-128 jobs).
"""

from conftest import run_once

from repro.analysis import line_plot, tables
from repro.analysis.experiments import fig5_total_size_limit


def test_bench_fig5(benchmark, scale, record):
    sweeps = run_once(benchmark, fig5_total_size_limit, scale)
    title = ("Figure 5 — maximal total job size 64 vs 128 "
             "(L=16, balanced)")
    text = tables.render_sweeps(sweeps, title=title)
    plot = line_plot(
        {s.label: s.series() for s in sweeps},
        x_label="gross utilization", y_label="mean response (s)",
        y_range=(0, 10_000), x_range=(0, 1), title=title,
    )
    record("fig5", text + "\n\n" + plot)

    by_label = {s.label: s for s in sweeps}
    for policy in ("LS", "SC", "GS", "LP"):
        cut = by_label[f"{policy} 64"]
        full = by_label[f"{policy} 128"]
        # Every policy sustains at least as much load without the
        # giant jobs (§3.2).
        assert (cut.max_stable_utilization
                >= full.max_stable_utilization - 0.06), policy
        # ...and responds faster at a common moderate load.
        r_cut = cut.response_at(0.5, tolerance=0.06)
        r_full = full.response_at(0.5, tolerance=0.06)
        if r_cut is not None and r_full is not None:
            assert r_cut <= r_full * 1.1, policy
    # SC gains the most maximal utilization from the cut (§3.2).
    sc_gain = (by_label["SC 64"].max_stable_utilization
               - by_label["SC 128"].max_stable_utilization)
    assert sc_gain >= -0.02
