"""Table 1 — fractions of jobs with sizes powers of two.

Regenerates the paper's Table 1 three ways: the published values, the
reconstructed size model, and the marginals of a freshly generated
synthetic DAS1 log.  All three must agree (model exactly, log to
sampling error).
"""

from conftest import run_once

from repro.analysis import tables
from repro.analysis.experiments import table1_power_of_two_fractions


def test_bench_table1(benchmark, scale, record):
    data = run_once(benchmark, table1_power_of_two_fractions, scale)
    record("table1", tables.render_table1(data))
    for row in data["rows"]:
        assert abs(row["model"] - row["paper"]) < 1e-9
        assert abs(row["log"] - row["paper"]) < 0.02
