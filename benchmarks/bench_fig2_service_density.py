"""Figure 2 — the density of service times (cut at 900 s).

Regenerates the service-time histogram of the synthetic DAS1 log below
the working-hours kill limit: heavy mass at short runtimes plus the
pile-up against the 900 s cutoff.
"""

from conftest import run_once

from repro.analysis import bar_chart
from repro.analysis.experiments import fig2_service_density


def test_bench_fig2(benchmark, scale, record):
    data = run_once(benchmark, fig2_service_density, scale, 60.0)
    chart = bar_chart(
        data["bins"],
        title=(
            "Figure 2 — service-time density below 900 s "
            f"(mean {data['mean']:.1f}s, CV {data['cv']:.2f}, "
            f"{data['fraction_below_cutoff']:.1%} of jobs below the "
            "kill limit)"
        ),
    )
    record("fig2", chart)
    # Shape assertions: decreasing body + terminal spike at the cutoff.
    bins = sorted(data["bins"].items())
    assert bins[0][0] == 0.0
    body_first = bins[1][1]
    body_mid = dict(bins).get(420.0, 0)
    assert body_first > body_mid  # decaying body
    last_bin = bins[-1]
    assert last_bin[0] >= 840.0 - 1e-9
    assert last_bin[1] > body_mid  # kill-limit pile-up
    assert data["fraction_below_cutoff"] > 0.85
