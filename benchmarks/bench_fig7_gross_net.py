"""Figure 7 — response time against gross AND net utilization.

For LS, LP and GS at each component-size limit, the same runs are
plotted against both utilization axes.  The horizontal gap between the
two curves is the workload's gross/net ratio — computable analytically
(§4) and asserted here against the measurement.
"""

import pytest
from conftest import run_once

from repro.analysis import line_plot, tables
from repro.analysis.experiments import fig7_gross_vs_net


@pytest.mark.parametrize("policy", ["LS", "LP", "GS"])
@pytest.mark.parametrize("limit", [16, 24, 32])
def test_bench_fig7(benchmark, scale, record, policy, limit):
    data = run_once(benchmark, fig7_gross_vs_net, policy, limit, scale)
    text = tables.render_fig7(data)
    gx, gy = data["gross_series"]
    nx, ny = data["net_series"]
    plot = line_plot(
        {"gross": (gx, gy), "net": (nx, ny)},
        x_label="utilization", y_label="mean response (s)",
        y_range=(0, 10_000), x_range=(0, 1),
        title=f"Figure 7 — {policy} L={limit}",
    )
    record(f"fig7_{policy}_L{limit}", text + "\n\n" + plot)

    # Measured gross/net ratio equals the analytic §4 ratio pointwise.
    for p in data["sweep"].points:
        if p.net_utilization > 0.01:
            measured = p.gross_utilization / p.net_utilization
            assert measured == pytest.approx(
                data["theoretical_ratio"], rel=0.02
            )
