"""Table 2 — fractions of jobs with 1..4 components per size limit.

Exact reproduction: the component count is a deterministic function of
the total size, so the model reproduces the paper's Table 2 to the last
digit (with the documented 0.009 correction of the scanned L=16 row).
"""

from conftest import run_once

from repro.analysis import tables
from repro.analysis.experiments import table2_component_fractions
from repro.workload.stats_model import MULTI_COMPONENT_FRACTIONS


def test_bench_table2(benchmark, record):
    data = run_once(benchmark, table2_component_fractions)
    text = tables.render_table2(data)
    lines = [
        f"multi-component fraction L={L}: paper {f:.3f}, model "
        f"{1 - next(r for r in data['rows'] if r['limit'] == L)['model'][0]:.3f}"
        for L, f in sorted(MULTI_COMPONENT_FRACTIONS.items())
    ]
    record("table2", text + "\n" + "\n".join(lines))
    for row in data["rows"]:
        for paper, model in zip(row["paper"], row["model"]):
            assert abs(paper - model) < 1e-9
