#!/usr/bin/env python
"""Hot-path throughput benchmark: optimized kernels vs the reference path.

Measures, per policy, the end-to-end simulator throughput (jobs/sec and
events/sec) of the optimized hot path against a *reference
configuration* that reconstructs the pre-optimization behavior from the
equivalence knobs left in the code for exactly this purpose:

==================  =========================  ==========================
layer               optimized (default)        reference configuration
==================  =========================  ==========================
run loop            ``Simulator.run_while``    stepwise ``peek()``/
                    fused heap loop            ``step()`` drive loop
departures          ``defer()`` callbacks      per-job ``Timeout`` events
                    (``direct_departures``)    (``direct_departures=False``)
placement           allocation-free kernels    ``REFERENCE_RULES`` greedy
                    (``PLACEMENT_RULES``)      (sort + index bookkeeping)
workload draws      block RNG prefetch         scalar draws (``batch=1``)
==================  =========================  ==========================

Both variants are run from the same seed and their run fingerprints
(event counters, scheduler counters, utilization report) are asserted
equal before any timing is trusted — the benchmark refuses to compare
runs that diverged.

Timing uses paired rounds in A/B/B/A order (alternating which variant
runs first, cancelling thermal/frequency drift) and summarizes the
per-round speedup distribution by its median and lower quartile — the
"quiet quartile" convention of ``bench_obs_overhead.py``; the quartile
is the conservative figure.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick --check

Writes machine-readable results to ``BENCH_hotpath.json`` (``--out`` to
redirect).  ``--check`` additionally asserts that every case parses and
shows speedup >= 1.0x, exiting nonzero otherwise (the CI perf-smoke
gate; intentionally loose so shared runners don't flake).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Optional

# The benchmark (like the engine it measures) needs numpy, which ships
# under the [batch] extra.  Import failures are deferred to main() so
# a no-numpy environment gets a clear skip (exit 0) instead of an
# ImportError — and so pytest can collect this file (python_files
# includes bench_*.py) in minimal environments.
try:
    from repro.core.placement import REFERENCE_RULES
    from repro.core.system import MulticlusterSimulation, SimulationConfig
    from repro.sim.rng import StreamFactory
    from repro.workload import WORKLOADS, das_t_900
    from repro.workload.generator import ArrivalProcess, JobFactory
except ModuleNotFoundError as exc:
    if (exc.name or "").partition(".")[0] != "numpy":
        raise
    _IMPORT_ERROR: Optional[ModuleNotFoundError] = exc
else:
    _IMPORT_ERROR = None

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "repro.bench.hotpath/1"

#: (policy, target gross utilization, component limit).  GS at the
#: paper's base-case load; LS/LP at high utilization where the local
#: queue scans and placement kernels dominate; SC as the single-cluster
#: reference.
CASES = (
    ("GS", 0.70, 16),
    ("LS", 0.90, 16),
    ("LP", 0.90, 16),
    ("SC", 0.70, None),
)

#: Pre-optimization throughput of this benchmark's cases measured at the
#: parent commit (96c1c14) on the development machine, full scale, best
#: of 5 — informational context for docs/performance.md.  Machine
#: dependent: CI compares reference-vs-optimized within one run instead.
SEED_BASELINE = {
    "commit": "96c1c14",
    "jobs_per_sec": {"GS": 9331.3, "LS": 8508.8,
                     "LP": 8877.3, "SC": 13092.4},
    "events_per_sec": {"GS": 19054.6, "LS": 19073.7,
                       "LP": 19547.8, "SC": 26308.7},
}


def _config(policy: str, limit: Optional[int], warmup: int,
            measured: int) -> SimulationConfig:
    if policy == "SC":
        return SimulationConfig.single_cluster(
            seed=7, warmup_jobs=warmup, measured_jobs=measured,
            batch_size=max(1, measured // 10),
        )
    return SimulationConfig(
        policy=policy, component_limit=limit, seed=7,
        warmup_jobs=warmup, measured_jobs=measured,
        batch_size=max(1, measured // 10),
    )


def _run(config: SimulationConfig, rho: float, *, optimized: bool) -> dict:
    """One complete run; returns timing plus a determinism fingerprint."""
    sizes = WORKLOADS["das-s-128"]()
    service = das_t_900()
    batch = None if optimized else 1
    system = MulticlusterSimulation(
        policy=config.policy,
        capacities=config.capacities,
        extension_factor=config.extension_factor,
        placement=(config.placement if optimized
                   else REFERENCE_RULES[config.placement]),
        batch_size=config.batch_size,
        direct_departures=optimized,
    )
    factory = JobFactory(
        size_distribution=sizes,
        service_distribution=service,
        component_limit=config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(config.seed),
        batch=batch,
    )
    rate = factory.arrival_rate_for_gross_utilization(rho, config.capacity)
    sim = system.sim
    ArrivalProcess(
        sim, factory, rate, system.submit, limit=None,
        rng=StreamFactory(config.seed).get("arrivals.iat"),
        batch=batch,
    )

    warmup_target = config.warmup_jobs
    total_target = config.warmup_jobs + config.measured_jobs
    start = time.perf_counter()
    if optimized:
        sim.run_while(lambda: system.jobs_finished < warmup_target)
        system.metrics.reset(sim.now)
        sim.run_while(lambda: system.jobs_finished < total_target)
    else:
        # The seed drive loop: peek-against-inf guard, one step() call
        # (generic dispatch, tuple unpack, callback-list walk) per event.
        inf = float("inf")
        while system.jobs_finished < warmup_target and sim.peek() != inf:
            sim.step()
        system.metrics.reset(sim.now)
        while system.jobs_finished < total_target and sim.peek() != inf:
            sim.step()
    elapsed = time.perf_counter() - start

    report = system.metrics.report(sim.now)
    fingerprint = repr((
        sim.events_processed,
        sim.events_scheduled,
        system.jobs_started,
        system.jobs_finished,
        system.policy.placement_attempts,
        system.policy.placement_failures,
        sorted((q.name, q.times_disabled) for q in system.policy.queues()),
        sim.now,
        sorted(report.as_dict().items()),
    ))
    return {
        "elapsed": elapsed,
        "jobs": system.jobs_finished,
        "events": sim.events_processed,
        "fingerprint": fingerprint,
    }


def bench_case(policy: str, rho: float, limit: Optional[int],
               warmup: int, measured: int, rounds: int) -> dict:
    config = _config(policy, limit, warmup, measured)
    ratios = []
    opt_runs = []
    for round_index in range(rounds):
        # A/B/B/A: alternate which variant pays the cold-start cost.
        if round_index % 2 == 0:
            ref = _run(config, rho, optimized=False)
            opt = _run(config, rho, optimized=True)
        else:
            opt = _run(config, rho, optimized=True)
            ref = _run(config, rho, optimized=False)
        if ref["fingerprint"] != opt["fingerprint"]:
            raise AssertionError(
                f"{policy}: reference and optimized runs diverged; "
                "timing comparison would be meaningless"
            )
        ratios.append(ref["elapsed"] / opt["elapsed"])
        opt_runs.append(opt)
    best = min(opt_runs, key=lambda run: run["elapsed"])
    quartile = (statistics.quantiles(ratios, n=4)[0] if len(ratios) > 1
                else ratios[0])
    return {
        "rho": rho,
        "component_limit": limit,
        "jobs_per_sec": round(best["jobs"] / best["elapsed"], 1),
        "events_per_sec": round(best["events"] / best["elapsed"], 1),
        "jobs": best["jobs"],
        "events": best["events"],
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_quartile": round(quartile, 3),
        "speedup_rounds": [round(r, 3) for r in ratios],
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="short runs for CI smoke testing")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_hotpath.json",
                        help="output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless every case shows "
                             "speedup >= 1.0x")
    args = parser.parse_args(argv)

    if _IMPORT_ERROR is not None:
        print("SKIPPED: numpy is not installed "
              f"({_IMPORT_ERROR}); install the numeric stack with "
              "`pip install repro[batch]` to run this benchmark")
        return 0

    if args.quick:
        warmup, measured, rounds = 200, 1_200, 3
    else:
        warmup, measured, rounds = 500, 5_000, 5

    cases = {}
    for policy, rho, limit in CASES:
        cases[policy] = bench_case(policy, rho, limit,
                                   warmup, measured, rounds)
        print(f"{policy}: {cases[policy]['jobs_per_sec']:>9.1f} jobs/s  "
              f"{cases[policy]['events_per_sec']:>9.1f} events/s  "
              f"speedup x{cases[policy]['speedup_quartile']:.2f} "
              f"(median x{cases[policy]['speedup_median']:.2f})")

    payload = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_hotpath.py",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "warmup_jobs": warmup,
        "measured_jobs": measured,
        "rounds": rounds,
        "cases": cases,
        "seed_baseline": SEED_BASELINE,
        # Throughput vs the parent-commit baseline.  Only meaningful
        # when run on the machine that produced SEED_BASELINE (the
        # committed full-mode run is); CI relies on the in-run
        # reference-vs-optimized speedups above instead.
        "vs_seed_jobs_per_sec": {
            policy: round(case["jobs_per_sec"]
                          / SEED_BASELINE["jobs_per_sec"][policy], 2)
            for policy, case in cases.items()
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        reparsed = json.loads(args.out.read_text(encoding="utf-8"))
        failed = [name for name, case in reparsed["cases"].items()
                  if case["speedup_quartile"] < 1.0]
        if failed:
            print(f"CHECK FAILED: speedup < 1.0x for {', '.join(failed)}")
            return 1
        print("CHECK OK: all cases parse and show speedup >= 1.0x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
