#!/usr/bin/env python
"""Batch-backend throughput benchmark: lockstep replications vs scalar.

Measures, per policy, how fast the lockstep batch backend
(``repro.sim.batch``) completes a width-N replication sweep of one
configuration against the scalar engine running the same N seeds
sequentially — the exact substitution ``replicate_sweep(...,
backend="batch")`` makes.  A fifth ``grid`` case times the *fused*
path end-to-end: the paper's whole Fig. 3 campaign (every policy ×
component limit × utilization) through
:func:`repro.runner.fused.execute_fused` heterogeneous lanes versus
the scalar runner executing the same task list serially — the exact
substitution ``sweep(..., backend="batch")`` makes for a campaign.

The comparison is only meaningful because the two backends are
*interchangeable*: before any timing is trusted, every round asserts
that the per-seed :class:`~repro.analysis.points.SweepPoint` lists from
both backends are identical (the differential fingerprint self-check;
the full adversarial suite lives in ``tests/sim/test_batch_oracle.py``).
A benchmark round that diverges raises instead of reporting a number.

Timing uses paired rounds in A/B/B/A order (alternating which backend
runs first, cancelling thermal/frequency drift) and summarizes the
per-round speedup distribution by its median and lower quartile — the
conservative "quiet quartile" convention of ``bench_hotpath.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py           # full
    PYTHONPATH=src python benchmarks/bench_batch.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_batch.py --quick --check

Writes machine-readable results to ``BENCH_batch.json`` (``--out`` to
redirect).  ``--check`` additionally gates the speedup quartiles: in
full mode the headline GS case must reach the 5x target (the committed
``BENCH_batch.json`` is a full-mode run) and every case must beat the
scalar engine; in quick mode — short runs, narrow width, shared CI
runners — the gate only requires the fingerprint check to have passed
and GS/SC to show any speedup at all.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Optional

# The benchmark needs numpy, which ships under the [batch] extra.
# Import failures are deferred to main() so a no-numpy environment
# gets a clear skip (exit 0) instead of an ImportError — and so pytest
# can collect this file (python_files includes bench_*.py) in minimal
# environments.
try:
    from repro.analysis.points import SweepPoint
    from repro.core.system import SimulationConfig, run_open_system
    from repro.runner import RunTask, execute_fused, task_key
    from repro.runner.worker import run_task_result
    from repro.sim.batch import run_batch_points
    from repro.sim.rng import StreamFactory
    from repro.workload import WORKLOADS, das_t_900
    from repro.workload.generator import JobFactory
except ModuleNotFoundError as exc:
    if (exc.name or "").partition(".")[0] != "numpy":
        raise
    _IMPORT_ERROR: Optional[ModuleNotFoundError] = exc
else:
    _IMPORT_ERROR = None

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "repro.bench.batch/1"

#: (policy, target gross utilization, component limit).  GS at the
#: paper's base-case load is the headline case for the 5x target;
#: LS/LP at high utilization where the visiting rounds dominate; SC as
#: the single-cluster reference.
CASES = (
    ("GS", 0.70, 16),
    ("LS", 0.90, 16),
    ("LP", 0.90, 16),
    ("SC", 0.70, None),
)

#: The fused whole-campaign case: every policy's Fig. 3 curve family —
#: GS/LS/LP at each component limit, SC once — across a shared
#: utilization grid, run end-to-end through
#: :func:`repro.runner.fused.execute_fused` against the scalar runner
#: executing the same task list sequentially.  Unlike the per-policy
#: cases above (homogeneous replications of one configuration), every
#: lane here carries its own (limit, load) pair and retired lanes
#: refill from the remaining grid.
GRID_POLICIES = ("GS", "LS", "LP")
GRID_LIMITS_FULL = (16, 24, 32)
GRID_RHOS_FULL = (0.4, 0.5, 0.6, 0.7, 0.8)
GRID_LIMITS_QUICK = (16, 24)
GRID_RHOS_QUICK = (0.4, 0.6)

#: --check gates on the per-case speedup quartile.  Full mode pins the
#: headline 5x target on GS, the 3x end-to-end target on the fused
#: grid campaign, and beating-scalar on every policy; quick mode
#: (short runs, width 8, shared runners) only sanity-checks the
#: single-queue policies — whose speedup is the least load-sensitive —
#: and requires the fused grid not to lose to scalar.
CHECK_GATES = {
    "full": {"GS": 5.0, "LS": 1.0, "LP": 1.0, "SC": 1.0, "grid": 3.0},
    "quick": {"GS": 1.0, "SC": 1.0, "grid": 1.0},
}


def _config(policy: str, limit: Optional[int], warmup: int,
            measured: int) -> SimulationConfig:
    if policy == "SC":
        return SimulationConfig.single_cluster(
            seed=7, warmup_jobs=warmup, measured_jobs=measured,
            batch_size=max(1, measured // 10),
        )
    return SimulationConfig(
        policy=policy, component_limit=limit, seed=7,
        warmup_jobs=warmup, measured_jobs=measured,
        batch_size=max(1, measured // 10),
    )


def _run_scalar(config: SimulationConfig, rate: float,
                seeds: list[int]) -> dict:
    """The PR-4 scalar kernel, one full run per seed, sequentially."""
    sizes = WORKLOADS["das-s-128"]()
    service = das_t_900()
    start = time.perf_counter()
    points = []
    for seed in seeds:
        cfg = dataclasses.replace(config, seed=seed)
        points.append(SweepPoint.from_result(
            run_open_system(cfg, sizes, service, rate)
        ))
    elapsed = time.perf_counter() - start
    return {"elapsed": elapsed, "points": points}


def _run_batch(config: SimulationConfig, rate: float, rho: float,
               seeds: list[int]) -> dict:
    """All seeds in one lockstep kernel."""
    sizes = WORKLOADS["das-s-128"]()
    service = das_t_900()
    start = time.perf_counter()
    points = run_batch_points(config, sizes, service, rho, seeds,
                              arrival_rate=rate)
    elapsed = time.perf_counter() - start
    return {"elapsed": elapsed, "points": points}


def bench_case(policy: str, rho: float, limit: Optional[int],
               warmup: int, measured: int, width: int,
               rounds: int) -> dict:
    config = _config(policy, limit, warmup, measured)
    factory = JobFactory(
        WORKLOADS["das-s-128"](), das_t_900(), config.component_limit,
        clusters=len(config.capacities),
        extension_factor=config.extension_factor,
        routing_weights=config.routing_weights,
        streams=StreamFactory(0),
    )
    rate = factory.arrival_rate_for_gross_utilization(rho, config.capacity)
    seeds = [7 + 1000 * i for i in range(width)]
    jobs_total = width * (warmup + measured)

    ratios = []
    batch_runs = []
    scalar_runs = []
    for round_index in range(rounds):
        # A/B/B/A: alternate which backend pays the cold-start cost.
        if round_index % 2 == 0:
            scalar = _run_scalar(config, rate, seeds)
            batch = _run_batch(config, rate, rho, seeds)
        else:
            batch = _run_batch(config, rate, rho, seeds)
            scalar = _run_scalar(config, rate, seeds)
        if batch["points"] != scalar["points"]:
            raise AssertionError(
                f"{policy}: batch and scalar per-seed statistics "
                "diverged; timing comparison would be meaningless"
            )
        ratios.append(scalar["elapsed"] / batch["elapsed"])
        batch_runs.append(batch)
        scalar_runs.append(scalar)
    best = min(run["elapsed"] for run in batch_runs)
    best_scalar = min(run["elapsed"] for run in scalar_runs)
    quartile = (statistics.quantiles(ratios, n=4)[0] if len(ratios) > 1
                else ratios[0])
    return {
        "rho": rho,
        "component_limit": limit,
        "width": width,
        "jobs": jobs_total,
        "jobs_per_sec": round(jobs_total / best, 1),
        "scalar_jobs_per_sec": round(jobs_total / best_scalar, 1),
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_quartile": round(quartile, 3),
        "speedup_rounds": [round(r, 3) for r in ratios],
        "fingerprint_checked": True,
    }


def _grid_tasks(warmup: int, measured: int,
                limits: tuple, rhos: tuple) -> list:
    """The campaign task list: Fig. 3's curve families, grid order."""
    sizes = WORKLOADS["das-s-128"]()
    service = das_t_900()
    tasks = []
    for policy in GRID_POLICIES:
        for limit in limits:
            config = _config(policy, limit, warmup, measured)
            tasks.extend(
                RunTask(config, sizes, service, rho, backend="batch")
                for rho in rhos
            )
    single = _config("SC", None, warmup, measured)
    tasks.extend(
        RunTask(single, sizes, service, rho, backend="batch")
        for rho in rhos
    )
    return tasks


def _run_grid_scalar(tasks: list) -> dict:
    """The scalar runner's serial path: one engine run per task."""
    start = time.perf_counter()
    points = [SweepPoint.from_result(run_task_result(t)) for t in tasks]
    elapsed = time.perf_counter() - start
    return {"elapsed": elapsed, "points": points}


def _run_grid_fused(tasks: list, width: int) -> dict:
    """The whole campaign through fused heterogeneous lane kernels."""
    start = time.perf_counter()
    by_key = execute_fused(tasks, cache=False, width=width)
    points = [by_key[task_key(t)] for t in tasks]
    elapsed = time.perf_counter() - start
    return {"elapsed": elapsed, "points": points}


def bench_grid(warmup: int, measured: int, width: int, rounds: int,
               limits: tuple, rhos: tuple) -> dict:
    """Fused-vs-scalar end-to-end timing of the full campaign grid."""
    tasks = _grid_tasks(warmup, measured, limits, rhos)
    jobs_total = len(tasks) * (warmup + measured)
    ratios = []
    fused_runs = []
    scalar_runs = []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            scalar = _run_grid_scalar(tasks)
            fused = _run_grid_fused(tasks, width)
        else:
            fused = _run_grid_fused(tasks, width)
            scalar = _run_grid_scalar(tasks)
        if fused["points"] != scalar["points"]:
            raise AssertionError(
                "grid: fused and scalar per-point statistics diverged; "
                "timing comparison would be meaningless"
            )
        ratios.append(scalar["elapsed"] / fused["elapsed"])
        fused_runs.append(fused)
        scalar_runs.append(scalar)
    best = min(run["elapsed"] for run in fused_runs)
    best_scalar = min(run["elapsed"] for run in scalar_runs)
    quartile = (statistics.quantiles(ratios, n=4)[0] if len(ratios) > 1
                else ratios[0])
    return {
        "policies": list(GRID_POLICIES) + ["SC"],
        "component_limits": list(limits),
        "rhos": list(rhos),
        "grid_points": len(tasks),
        "width": width,
        "jobs": jobs_total,
        "jobs_per_sec": round(jobs_total / best, 1),
        "scalar_jobs_per_sec": round(jobs_total / best_scalar, 1),
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_quartile": round(quartile, 3),
        "speedup_rounds": [round(r, 3) for r in ratios],
        "fingerprint_checked": True,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="short runs for CI smoke testing")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_batch.json",
                        help="output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the speedup gates for "
                             "the current mode hold")
    args = parser.parse_args(argv)

    if _IMPORT_ERROR is not None:
        print("SKIPPED: numpy is not installed "
              f"({_IMPORT_ERROR}); install the numeric stack with "
              "`pip install repro[batch]` to run this benchmark")
        return 0

    if args.quick:
        warmup, measured, width, rounds = 100, 500, 8, 2
    else:
        warmup, measured, width, rounds = 500, 2_000, 32, 5

    mode = "quick" if args.quick else "full"
    cases = {}
    for policy, rho, limit in CASES:
        cases[policy] = bench_case(policy, rho, limit,
                                   warmup, measured, width, rounds)
        print(f"{policy}: {cases[policy]['jobs_per_sec']:>9.1f} jobs/s  "
              f"width {width}  "
              f"speedup x{cases[policy]['speedup_quartile']:.2f} "
              f"(median x{cases[policy]['speedup_median']:.2f})")

    limits = GRID_LIMITS_QUICK if args.quick else GRID_LIMITS_FULL
    rhos = GRID_RHOS_QUICK if args.quick else GRID_RHOS_FULL
    cases["grid"] = bench_grid(warmup, measured, width, rounds,
                               limits, rhos)
    print(f"grid: {cases['grid']['jobs_per_sec']:>8.1f} jobs/s  "
          f"{cases['grid']['grid_points']} points fused  "
          f"speedup x{cases['grid']['speedup_quartile']:.2f} "
          f"(median x{cases['grid']['speedup_median']:.2f})")

    payload = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_batch.py",
        "mode": mode,
        "python": platform.python_version(),
        "warmup_jobs": warmup,
        "measured_jobs": measured,
        "width": width,
        "rounds": rounds,
        "cases": cases,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        reparsed = json.loads(args.out.read_text(encoding="utf-8"))
        gates = CHECK_GATES[reparsed["mode"]]
        failed = [
            f"{name} x{case['speedup_quartile']:.2f} < x{gates[name]:.1f}"
            for name, case in reparsed["cases"].items()
            if name in gates and case["speedup_quartile"] < gates[name]
        ]
        if failed:
            print(f"CHECK FAILED: {'; '.join(failed)}")
            return 1
        print(f"CHECK OK: all {reparsed['mode']}-mode speedup gates hold "
              "and the fingerprint self-check passed every round")
    return 0


if __name__ == "__main__":
    sys.exit(main())
