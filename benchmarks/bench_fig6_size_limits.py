"""Figure 6 — per-policy comparison across component-size limits.

LS, LP (balanced and unbalanced) and GS, each across L = 16/24/32.
Shape assertions from §3.3:

* L=24 is the worst limit for every policy (the (22,21,21) split of
  size-64 jobs packs disastrously);
* for LS, L=16 beats L=32 (more co-allocation flexibility pays off for
  the policy that can exploit it).
"""

import pytest
from conftest import run_once

from repro.analysis import line_plot, rank_by_performance, tables
from repro.analysis.experiments import fig6_component_size_limits


@pytest.mark.parametrize("policy,balanced", [
    ("LS", True), ("LS", False),
    ("LP", True), ("LP", False),
    ("GS", True),
], ids=["LS-balanced", "LS-unbalanced", "LP-balanced", "LP-unbalanced",
        "GS"])
def test_bench_fig6(benchmark, scale, record, policy, balanced):
    sweeps = run_once(benchmark, fig6_component_size_limits, policy,
                      balanced, scale)
    mode = "balanced" if balanced else "unbalanced"
    title = f"Figure 6 — {policy} across size limits ({mode})"
    text = tables.render_sweeps(sweeps, title=title)
    plot = line_plot(
        {s.label: s.series() for s in sweeps},
        x_label="gross utilization", y_label="mean response (s)",
        y_range=(0, 10_000), x_range=(0, 1), title=title,
    )
    record(f"fig6_{policy}_{mode}", text + "\n\n" + plot)

    ranking = rank_by_performance(sweeps)
    # L=24 is the worst limit for every policy (§3.3).
    assert ranking[-1] == f"{policy} 24", ranking
