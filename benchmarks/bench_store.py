"""Telemetry read side — event-store scan, reducers, spans, dashboard.

The write side of the observability layer is gated by
``bench_obs_overhead.py`` (obs-on within 10% of obs-off).  This bench
covers the *read* side (``docs/observability.md``): after an
instrumented sweep has published its event logs and manifests, how
fast can the consumers get through them?

Four stages are timed over the same freshly-recorded obs root:

* **scan** — a full :class:`EventStore` pass over every event of every
  run (the floor for any ad-hoc query);
* **reduce** — the per-run time-series reducers the ``obs`` CLI plots
  (queue depth + throughput over each run's stream);
* **spans** — post-hoc span reconstruction from manifests
  (:func:`spans_from_obs`, what ``obs trace`` exports);
* **dashboard** — one ``collect`` + ``render`` frame, the unit of work
  ``obs dash`` repeats every refresh interval.

The exhibit reports wall-clock per stage and the scan rate in
events/s.  There are no absolute thresholds (shared runners are
noisy); the assertions pin that each stage actually consumed the
campaign — every run scanned, series non-empty, one span per run, the
dashboard frame showing the true run count.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from conftest import run_once

from repro.analysis.sweeps import sweep
from repro.obs.dash import collect, render
from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
from repro.obs.spans import spans_from_obs
from repro.obs.store import (
    EventStore,
    queue_depth_series,
    throughput_series,
)
from repro.workload import das_s_128, das_t_900

GRID = (0.3, 0.45, 0.6)


@contextmanager
def _obs_env(root):
    saved = {k: os.environ.get(k) for k in (OBS_ENV, OBS_DIR_ENV)}
    os.environ[OBS_ENV] = "1"
    os.environ[OBS_DIR_ENV] = str(root)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _read_side(root):
    """One full pass of every consumer; returns stage timings + facts."""
    store = EventStore(root)
    runs = store.runs()

    t0 = time.perf_counter()
    scanned = sum(1 for _ in store.events())
    t1 = time.perf_counter()

    series = []
    for stream in runs:
        # Window width in *simulation* time: 40 windows across the
        # run's event span (a tiny width would materialize millions
        # of empty windows between events).
        first = last = None
        for event in stream.events():
            t = event.get("t")
            if isinstance(t, (int, float)):
                last = t
                if first is None:
                    first = t
        span = (last - first) if first is not None else 0.0
        width = max(span / 40.0, 1.0)
        series.append(queue_depth_series(stream.events(), width))
        series.append(throughput_series(stream.events(), width))
    t2 = time.perf_counter()

    spans, markers = spans_from_obs(root)
    t3 = time.perf_counter()

    frame = render(collect(root))
    t4 = time.perf_counter()

    return {
        "runs": len(runs),
        "events": scanned,
        "series_points": sum(len(s.points) for s in series),
        "spans": len(spans),
        "markers": len(markers),
        "frame": frame,
        "scan_s": t1 - t0,
        "reduce_s": t2 - t1,
        "spans_s": t3 - t2,
        "dash_s": t4 - t3,
    }


def test_bench_store_read_side(benchmark, scale, record, tmp_path):
    obs_root = tmp_path / "obs"
    with _obs_env(obs_root):
        config = scale.config("GS", 16, warmup_jobs=300,
                              measured_jobs=1_500)
        sweep("GS", config, das_s_128(), das_t_900(), GRID)

    # Warm pass outside timing (imports, directory walks), then the
    # timed pass doubles as the pytest-benchmark sample.
    _read_side(obs_root)
    out = run_once(benchmark, _read_side, obs_root)

    assert out["runs"] == len(GRID)
    assert out["events"] > 0
    assert out["series_points"] > 0
    assert out["spans"] == len(GRID), (
        "expected one post-hoc task span per run"
    )
    assert f"runs {len(GRID)}" in out["frame"]

    rate = out["events"] / out["scan_s"] if out["scan_s"] else 0.0
    record(
        "store_read_side",
        f"Telemetry read side (GS sweep, {len(GRID)} grid points, "
        f"{out['events']} events)\n"
        f"  scan       {out['scan_s']:8.3f} s   "
        f"({rate:,.0f} events/s)\n"
        f"  reduce     {out['reduce_s']:8.3f} s   "
        f"({out['series_points']} series points)\n"
        f"  spans      {out['spans_s']:8.3f} s   "
        f"({out['spans']} spans, {out['markers']} markers)\n"
        f"  dashboard  {out['dash_s']:8.3f} s   (1 frame)\n",
    )
