"""Ablation — placement rule (the paper fixes Worst Fit).

Maximal GS utilization under Worst Fit (the paper's rule), First Fit
and Best Fit.  In a homogeneous multicluster the *fit decision* is
rule-independent (Hall's condition, see repro.core.placement), so the
rules differ only through the fragmentation they leave behind; the
spread is expected to be small but WF's load-levelling should never be
the worst choice for co-allocation.
"""

from conftest import run_once

from repro.analysis.ablations import placement_rule_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_placement(benchmark, scale, record):
    data = run_once(benchmark, placement_rule_ablation, scale)
    utils = data["max_gross_utilization"]
    rows = [(rule, value) for rule, value in utils.items()]
    record("ablation_placement", format_table(
        ["placement rule", "maximal gross utilization"], rows,
        title=f"Ablation — placement rules (GS, L={data['limit']})",
    ))
    # All rules land in a plausible band; the spread is bounded.
    values = list(utils.values())
    assert all(0.4 < v < 1.0 for v in values)
    assert max(values) - min(values) < 0.12
