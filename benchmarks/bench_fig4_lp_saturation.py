"""Figure 4 — response times close to LP's saturation point.

For each component-size limit every policy runs at the gross-utilization
point the paper annotates (0.55 / 0.46 / 0.54 for L=16/24/32), and LP's
response time is broken down into the local queues and the global queue.
The paper's signature observation: LP's global queue is the bottleneck —
its mean response dwarfs the local queues'.
"""

import math

import pytest
from conftest import run_once

from repro.analysis import tables
from repro.analysis.experiments import fig4_lp_saturation


@pytest.mark.parametrize("balanced", [True, False],
                         ids=["balanced", "unbalanced"])
def test_bench_fig4(benchmark, scale, record, balanced):
    data = run_once(benchmark, fig4_lp_saturation, balanced, scale)
    mode = "balanced" if balanced else "unbalanced"
    record(f"fig4_{mode}", tables.render_fig4(data))

    for panel in data["panels"]:
        lp = panel["bars"]["LP"]
        # LP's global queue is its bottleneck: global >> local.
        if not math.isnan(lp["global"]) and not math.isnan(lp["local"]):
            assert lp["global"] > lp["local"], panel["limit"]
        # The gross/net annotation pair behaves like the paper's.
        assert panel["net_utilization"] < panel["gross_utilization"]
        # LP is the worst policy at its own near-saturation point.
        others = [panel["bars"][p]["total"] for p in ("GS", "LS")]
        assert lp["total"] >= 0.8 * min(others), panel["limit"]
