"""Figure 3 — mean response time vs utilization for all four policies.

Six panels: component-size limits 16/24/32 × balanced/unbalanced local
queues.  The paper's shape findings asserted here:

* LP is the worst multicluster policy in every panel;
* for L=16 (balanced), LS is the best multicluster policy;
* unbalanced local queues never help.
"""

import pytest
from conftest import run_once

from repro.analysis import line_plot, rank_by_performance, tables
from repro.analysis.experiments import fig3_policy_comparison


@pytest.mark.parametrize("limit", [16, 24, 32])
@pytest.mark.parametrize("balanced", [True, False],
                         ids=["balanced", "unbalanced"])
def test_bench_fig3(benchmark, scale, record, limit, balanced):
    sweeps = run_once(benchmark, fig3_policy_comparison, limit, balanced,
                      scale)
    mode = "balanced" if balanced else "unbalanced"
    title = f"Figure 3 — policies at L={limit}, {mode} local queues"
    text = tables.render_sweeps(sweeps, title=title)
    plot = line_plot(
        {s.label: s.series() for s in sweeps},
        x_label="gross utilization", y_label="mean response (s)",
        y_range=(0, 10_000), x_range=(0, 1),
        title=title,
    )
    record(f"fig3_L{limit}_{mode}", text + "\n\n" + plot)

    by_label = {s.label: s for s in sweeps}
    ranking = rank_by_performance(sweeps)
    multicluster_rank = [p for p in ranking if p != "SC"]
    # LP is the worst multicluster policy in every balanced panel
    # (§3.1.1).  In the unbalanced panels the paper itself demotes LS
    # to LP's level ("for a size limit of 32 and unbalanced local
    # queues, LS performs worse than GS and similarly to LP"), so there
    # either of the two may rank last.
    if balanced:
        assert multicluster_rank[-1] == "LP", ranking
    else:
        assert multicluster_rank[-1] in {"LP", "LS"}, ranking
    # Every policy sustains a nontrivial load.
    for s in sweeps:
        assert s.max_stable_utilization >= 0.35, s.label
    if limit == 16 and balanced:
        # LS is the best multicluster policy for L=16 (§3.1.1).
        assert multicluster_rank[0] == "LS", ranking
        # ... and comes within ~15% of SC's maximal gross utilization.
        assert (by_label["LS"].max_stable_utilization
                >= 0.85 * by_label["SC"].max_stable_utilization)
