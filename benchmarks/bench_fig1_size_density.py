"""Figure 1 — the density of job-request sizes (128-processor cluster).

Regenerates the size histogram of the synthetic DAS1 log, split into the
paper's two series (powers of two vs other numbers), rendered as a bar
chart over the most frequent sizes.
"""

from conftest import run_once

from repro.analysis import bar_chart
from repro.analysis.experiments import fig1_size_density


def test_bench_fig1(benchmark, scale, record):
    data = run_once(benchmark, fig1_size_density, scale)
    merged = {**data["powers"], **data["others"]}
    top = dict(sorted(merged.items(), key=lambda kv: -kv[1])[:16])
    chart = bar_chart(
        top,
        title=(
            "Figure 1 — job-size density "
            f"({data['total']} jobs, {data['distinct_sizes']} distinct "
            "sizes; 16 most frequent shown)"
        ),
    )
    powers_share = sum(data["powers"].values()) / data["total"]
    chart += f"\npower-of-two share: {powers_share:.3f} (paper: 0.705)"
    record("fig1", chart)
    # The paper's headline features of the density:
    assert data["distinct_sizes"] >= 50
    assert abs(powers_share - 0.705) < 0.02
    assert max(merged, key=merged.get) == 64  # 19% spike at size 64
