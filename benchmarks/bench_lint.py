#!/usr/bin/env python
"""Analyzer throughput benchmark: simlint wall time over ``src/``.

Measures the end-to-end cost of ``lint_paths([src/repro])`` (total wall
seconds and files/sec) plus a stage/per-rule breakdown so future rules
have a perf trajectory like ``BENCH_hotpath.json``:

==============  ==========================================================
stage           what is timed
==============  ==========================================================
parse           ``build_context`` over every file (one AST parse each)
file rules      each per-file rule's ``check`` over the prebuilt contexts
project build   symbol table + call graph (``build_project`` +
                ``build_call_graph``) — paid once per run, shared by all
                cross-module rules
project rules   each project rule's ``check`` over the prebuilt
                project/graph
==============  ==========================================================

The breakdown reuses the runner's own building blocks rather than
re-running ``lint_paths`` per rule, so a rule's figure is its marginal
cost, not parse time re-counted twelve ways.  Each figure is the best
of ``rounds`` repetitions (parsing is deterministic; best-of discards
scheduler noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py           # full
    PYTHONPATH=src python benchmarks/bench_lint.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_lint.py --quick --check

Writes machine-readable results to ``BENCH_lint.json`` (``--out`` to
redirect).  ``--check`` additionally asserts the end-to-end lint of
``src/repro`` finishes under ``--budget`` seconds (default 5.0, the
lint-runtime smoke gate; intentionally loose so shared runners don't
flake) and that the tree is clean.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

from repro.lint import lint_paths
from repro.lint.config import rule_applies
from repro.lint.context import build_context
from repro.lint.graph import build_call_graph
from repro.lint.rules import RULES
from repro.lint.runner import iter_python_files
from repro.lint.symbols import build_project

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "repro.bench.lint/1"

#: The tree the quality gate lints — the benchmark measures exactly
#: what ``scripts/check.sh`` pays for.
TARGET = REPO_ROOT / "src" / "repro"


def _best_of(rounds: int, fn) -> float:
    """Best (minimum) wall time of ``rounds`` calls to ``fn``."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_end_to_end(rounds: int) -> dict:
    result = lint_paths([TARGET])
    elapsed = _best_of(rounds, lambda: lint_paths([TARGET]))
    return {
        "elapsed": round(elapsed, 4),
        "files": result.files_checked,
        "files_per_sec": round(result.files_checked / elapsed, 1),
        "violations": len(result.violations),
        "errors": len(result.errors),
    }


def bench_stages(rounds: int) -> dict:
    """Stage and per-rule breakdown over prebuilt inputs."""
    files = list(iter_python_files([TARGET]))
    parse = _best_of(rounds, lambda: [build_context(f) for f in files])
    contexts = [build_context(f) for f in files]

    per_rule: dict[str, float] = {}
    for rule_id in sorted(RULES):
        registered = RULES[rule_id]
        if registered.project:
            continue
        applicable = [ctx for ctx in contexts
                      if rule_applies(rule_id, ctx.module, None)]
        per_rule[rule_id] = _best_of(
            rounds,
            lambda: [list(registered.check(ctx)) for ctx in applicable])

    build = _best_of(
        rounds,
        lambda: build_call_graph(build_project(contexts)))
    project = build_project(contexts)
    graph = build_call_graph(project)
    for rule_id in sorted(RULES):
        registered = RULES[rule_id]
        if not registered.project:
            continue
        per_rule[rule_id] = _best_of(
            rounds, lambda: list(registered.check(project, graph)))

    return {
        "parse": round(parse, 4),
        "project_build": round(build, 4),
        "per_rule": {rule_id: round(cost, 4)
                     for rule_id, cost in sorted(per_rule.items())},
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds for CI smoke testing")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_lint.json",
                        help="output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the end-to-end lint "
                             "stays under --budget seconds and is clean")
    parser.add_argument("--budget", type=float, default=5.0,
                        help="--check wall-time budget in seconds "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    rounds = 2 if args.quick else 5

    end_to_end = bench_end_to_end(rounds)
    stages = bench_stages(rounds)
    print(f"end-to-end: {end_to_end['elapsed']:.3f}s for "
          f"{end_to_end['files']} files "
          f"({end_to_end['files_per_sec']:.1f} files/s)")
    print(f"parse {stages['parse']:.3f}s   "
          f"project build {stages['project_build']:.3f}s")
    for rule_id, cost in stages["per_rule"].items():
        print(f"  {rule_id}: {cost * 1000:7.1f} ms")

    payload = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_lint.py",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "rounds": rounds,
        "target": str(TARGET.relative_to(REPO_ROOT)),
        "end_to_end": end_to_end,
        "stages": stages,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check:
        reparsed = json.loads(args.out.read_text(encoding="utf-8"))
        measured = reparsed["end_to_end"]
        failures = []
        if measured["elapsed"] >= args.budget:
            failures.append(
                f"lint took {measured['elapsed']:.3f}s "
                f">= budget {args.budget:.1f}s")
        if measured["violations"] or measured["errors"]:
            failures.append(
                f"tree not clean: {measured['violations']} violation(s), "
                f"{measured['errors']} error(s)")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print(f"CHECK OK: {measured['elapsed']:.3f}s "
              f"< {args.budget:.1f}s budget, tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
