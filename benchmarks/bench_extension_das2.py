"""Extension — co-allocation on the real heterogeneous DAS2 shape.

The paper idealises the DAS2 as 4x32; the actual machine has five
clusters of 72+32+32+32+32 nodes (paper §2.1).  This bench checks the
first-order question the idealisation raises: does the policy ordering
carry over to the heterogeneous 200-processor system?
"""

from conftest import run_once

from repro.analysis.ablations import das2_heterogeneous_study
from repro.analysis.tables import format_table


def test_bench_extension_das2(benchmark, scale, record):
    data = run_once(benchmark, das2_heterogeneous_study, scale)
    rows = [
        (policy,
         r["mean_response"],
         r["gross_utilization"],
         r["net_utilization"],
         "saturated" if r["saturated"] else "")
        for policy, r in data["results"].items()
    ]
    record("extension_das2", format_table(
        ["policy", "mean response", "gross util", "net util", ""],
        rows,
        title=(
            "Extension — DAS2 shape "
            f"{'+'.join(str(c) for c in data['capacities'])} at "
            f"offered gross {data['target_utilization']:.2f} "
            f"(L={data['limit']})"
        ),
    ))
    res = data["results"]
    # Nothing saturates at this moderate load.
    assert not any(r["saturated"] for r in res.values())
    # The policy ordering carries over: SC fastest, LP the slowest
    # multicluster policy.
    assert res["SC"]["mean_response"] <= res["LS"]["mean_response"]
    assert res["LP"]["mean_response"] >= 0.95 * max(
        res["GS"]["mean_response"], res["LS"]["mean_response"]
    )
    # Gross/net gap present for the multicluster policies only.
    assert res["GS"]["net_utilization"] < res["GS"]["gross_utilization"]
    assert res["SC"]["net_utilization"] == res["SC"]["gross_utilization"]
