"""Ablation — EASY backfilling under inaccurate runtime estimates.

Perfect estimates are the idealised best case; users inflate estimates
by large factors in every archive study.  The f-model (estimate =
f × true runtime) quantifies the cost: overestimates shrink
backfilling opportunities, pulling the maximal utilization back toward
plain FCFS.
"""

from conftest import run_once

from repro.analysis.ablations import estimate_accuracy_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_estimates(benchmark, scale, record):
    data = run_once(benchmark, estimate_accuracy_ablation, scale)
    utils = data["max_gross_utilization"]
    rows = [(f"f = {k}" if isinstance(k, float) else k, v)
            for k, v in utils.items()]
    record("ablation_estimates", format_table(
        ["estimate model", "maximal gross utilization"], rows,
        title=(
            "Ablation — EASY with f-model estimates "
            f"(L={data['limit']})"
        ),
    ))
    # Perfect estimates dominate inflated ones...
    assert utils[1.0] >= utils[10.0] - 0.02
    # ...but even badly inflated estimates keep EASY at or above
    # plain FCFS (backfilling can refuse, never misschedule).
    assert utils[10.0] >= utils["GS (no backfill)"] - 0.03
