"""Observability overhead — obs-on within 10% of obs-off, byte-identical.

The observability layer (``docs/observability.md``) promises to be
cheap and side-band: with ``REPRO_OBS=1`` every computed run streams a
JSONL event log, writes a manifest and feeds the metrics registry, yet
the serialized sweep result must not change by a byte and the
wall-clock cost must stay within 10% of an obs-off run.

Both properties are asserted here on a real sweep.  Timing uses a
paired design: obs-off and obs-on sweeps alternate round by round, so
each ratio compares adjacent runs and survives host frequency shifts
that wreck independently-taken minima.  Shared-host interference only
ever *inflates* a round (``timeit`` doctrine: the quiet observations
are the accurate ones), so the asserted overhead is the **lower
quartile of the paired ratios**; the median is reported alongside it
for context.  The byte-equality check compares full ``save_sweep``
payloads.
"""

from __future__ import annotations

import io
import os
import statistics
import time
from contextlib import contextmanager

from conftest import run_once

from repro.analysis.io import save_sweep
from repro.analysis.sweeps import sweep
from repro.obs.gate import OBS_DIR_ENV, OBS_ENV
from repro.workload import das_s_128, das_t_900

GRID = (0.3, 0.45, 0.6)
ROUNDS = 9
MAX_OVERHEAD = 0.10


@contextmanager
def _obs_env(enabled: bool, root):
    saved = {k: os.environ.get(k) for k in (OBS_ENV, OBS_DIR_ENV)}
    if enabled:
        os.environ[OBS_ENV] = "1"
        os.environ[OBS_DIR_ENV] = str(root)
    else:
        os.environ.pop(OBS_ENV, None)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _sweep(scale):
    config = scale.config("GS", 16, warmup_jobs=300, measured_jobs=1_500)
    return sweep("GS", config, das_s_128(), das_t_900(), GRID)


def _payload(result) -> str:
    buf = io.StringIO()
    save_sweep(result, buf)
    return buf.getvalue()


def test_bench_obs_overhead(benchmark, scale, record, tmp_path):
    obs_root = tmp_path / "obs"

    # Warm both paths (imports, obs directory creation) outside timing;
    # the warm obs-on run doubles as the pytest-benchmark sample.
    with _obs_env(False, obs_root):
        off = _sweep(scale)
    with _obs_env(True, obs_root):
        on = run_once(benchmark, _sweep, scale)

    def _timed(enabled: bool):
        with _obs_env(enabled, obs_root):
            t0 = time.perf_counter()
            result = _sweep(scale)
            return result, time.perf_counter() - t0

    # A/B/B/A: alternate which variant runs first so that monotone
    # load drift within a round inflates half the ratios and deflates
    # the other half instead of biasing them all one way.
    ratios = []
    for round_no in range(ROUNDS):
        if round_no % 2:
            on, on_s = _timed(True)
            off, off_s = _timed(False)
        else:
            off, off_s = _timed(False)
            on, on_s = _timed(True)
        ratios.append(on_s / off_s - 1.0)

    # The obs runs must actually have recorded something, or the
    # overhead assertion is vacuous.
    manifests = list((obs_root / "manifests").rglob("*.json"))
    event_logs = list((obs_root / "events").rglob("*.jsonl"))
    assert manifests, "obs-on run wrote no manifests"
    assert event_logs, "obs-on run wrote no event logs"

    assert _payload(on) == _payload(off), (
        "REPRO_OBS=1 changed the serialized sweep result"
    )

    overhead = statistics.quantiles(ratios, n=4)[0]
    median = statistics.median(ratios)
    record(
        "obs_overhead",
        f"Observability overhead (GS sweep, {len(GRID)} grid points, "
        f"{ROUNDS} paired rounds)\n"
        f"  per-round       {', '.join(f'{r:+.1%}' for r in ratios)}\n"
        f"  quiet quartile  {overhead:8.1%}\n"
        f"  median          {median:8.1%}\n"
        f"  manifests       {len(manifests):4d}\n"
        f"  event logs      {len(event_logs):4d}\n"
        f"  byte-identical  yes\n",
    )
    assert overhead <= MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} (quiet quartile) exceeds "
        f"{MAX_OVERHEAD:.0%} (paired rounds: "
        f"{', '.join(f'{r:+.1%}' for r in ratios)})"
    )
