"""Ablation — the request-type taxonomy (unordered vs ordered vs
flexible vs total).

The paper studies unordered requests; its predecessors [6, 7] cover the
whole taxonomy.  Expected dominance in maximal utilization:
flexible >= unordered >= ordered (each type strictly relaxes the
previous one's placement constraints).
"""

from conftest import run_once

from repro.analysis.ablations import request_type_ablation
from repro.analysis.tables import format_table


def test_bench_ablation_request_types(benchmark, scale, record):
    data = run_once(benchmark, request_type_ablation, scale)
    utils = data["max_gross_utilization"]
    rows = list(utils.items())
    record("ablation_request_types", format_table(
        ["request type", "maximal gross utilization"], rows,
        title=f"Ablation — request types (GS, L={data['limit']})",
    ))
    # Dominance order (small tolerance for simulation noise).
    assert utils["flexible"] >= utils["unordered"] - 0.02
    assert utils["unordered"] >= utils["ordered"] - 0.02
    # Flexible requests beat even the single-cluster total requests:
    # they use the whole machine without the one-cluster constraint.
    # (FCFS head-of-line blocking still caps them well below 1.0.)
    assert utils["flexible"] >= utils["total (SC)"] - 0.02
