"""Table 3 — maximal gross and net utilizations (constant backlog).

The paper's Table 3 reports GS's maximal gross utilization per
component-size limit and derives the net values through the §4 ratios;
the text adds the SC reference.  Shape assertions:

* L=24 yields the lowest maximal utilization for GS;
* maximal net = maximal gross / ratio(L) by construction;
* the §4 ratios match the (gross, net) pairs printed in Figure 4.
"""

from conftest import run_once

from repro.analysis import tables
from repro.analysis.experiments import table3_maximal_utilization

#: The paper's Figure 4 prints these (gross, net) utilization pairs.
FIG4_PAIRS = {16: (0.552, 0.453), 24: (0.463, 0.395), 32: (0.544, 0.469)}


def test_bench_table3(benchmark, scale, record):
    data = run_once(benchmark, table3_maximal_utilization, scale, True)
    record("table3", tables.render_table3(data))

    by_limit = {m.config.component_limit: m for m in data["gs_rows"]}
    # L=24 packs worst (§3.3 carried into the maximal utilizations).
    assert by_limit[24].gross < by_limit[16].gross
    assert by_limit[24].gross < by_limit[32].gross
    # net = gross / ratio.
    for m in data["gs_rows"]:
        assert abs(m.net - m.gross / m.gross_net_ratio) < 1e-12
    # The analytic ratios reproduce the paper's Figure 4 pairs.
    for limit, (g, n) in FIG4_PAIRS.items():
        assert abs(data["ratios"][limit] - g / n) < 0.006
    # All maximal utilizations are nontrivial and below 1.
    for m in data["gs_rows"] + data["extra"] + [data["sc"]]:
        assert 0.4 < m.gross < 1.0
